"""Integration tests: the paper's observations O1–O5 must hold end-to-end.

These run small versions of the motivation experiments (Figs. 3–8) and
assert the *shape* of each result — who contends with whom, and which knob
removes the contention.
"""

import pytest

from repro.experiments.figures.base import run_setup
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload
from repro.workloads.xmem import xmem

KB = 1024
MB = 1024 * KB
EPOCHS = 6


def contention_run(touch, xmem_ways, dca_off=()):
    return run_setup(
        [
            DpdkWorkload(
                name="dpdk", touch=touch, cores=4, packet_bytes=1024,
                priority=PRIORITY_HIGH,
            ),
            xmem("xmem", 4.0, cores=2, priority=PRIORITY_LOW),
        ],
        masks={"dpdk": (5, 6), "xmem": xmem_ways},
        dca_off=dca_off,
        epochs=EPOCHS,
    )


class TestO1DirectoryContention:
    """O1: consumed DMA lines migrate to inclusive ways and evict whoever
    was allocated there."""

    def test_dpdk_t_hurts_xmem_in_inclusive_ways(self):
        run = contention_run(touch=True, xmem_ways=(9, 10))
        assert run.aggregate("xmem").llc_miss_rate > 0.5

    def test_dpdk_nt_leaves_inclusive_ways_alone(self):
        run = contention_run(touch=False, xmem_ways=(9, 10))
        assert run.aggregate("xmem").llc_miss_rate < 0.15

    def test_standard_ways_are_safe_either_way(self):
        for touch in (True, False):
            run = contention_run(touch=touch, xmem_ways=(3, 4))
            assert run.aggregate("xmem").llc_miss_rate < 0.1

    def test_disabling_dca_removes_directory_contention(self):
        run = contention_run(touch=True, xmem_ways=(9, 10), dca_off=("dpdk",))
        assert run.aggregate("xmem").llc_miss_rate < 0.15


class TestLatentContentionAndBloat:
    """The previously known contentions must also reproduce (§2.2)."""

    def test_latent_contention_in_dca_ways(self):
        run = contention_run(touch=False, xmem_ways=(0, 1))
        assert run.aggregate("xmem").llc_miss_rate > 0.5

    def test_dma_bloat_in_shared_ways_requires_touch(self):
        touched = contention_run(touch=True, xmem_ways=(5, 6))
        untouched = contention_run(touch=False, xmem_ways=(5, 6))
        assert touched.aggregate("xmem").llc_miss_rate > 0.25
        assert untouched.aggregate("xmem").llc_miss_rate < 0.1


class TestO2StorageContention:
    """O2: large-block storage I/O floods the DCA ways and inflates
    network latency; it gains nothing from DCA itself."""

    def co_run(self, block_bytes, dca_off=()):
        return run_setup(
            [
                DpdkWorkload(
                    name="dpdk", touch=True, cores=4, packet_bytes=1514,
                    priority=PRIORITY_HIGH,
                ),
                FioWorkload(
                    name="fio", block_bytes=block_bytes, cores=4, io_depth=32,
                    priority=PRIORITY_LOW,
                ),
            ],
            masks={"dpdk": (4, 5), "fio": (2, 3)},
            dca_off=dca_off,
            epochs=EPOCHS,
        )

    def test_large_blocks_inflate_network_tail_latency(self):
        small = self.co_run(32 * KB)
        large = self.co_run(2 * MB)
        assert (
            large.aggregate("dpdk").p99_latency
            > 1.5 * small.aggregate("dpdk").p99_latency
        )

    def test_storage_leaks_at_large_blocks(self):
        large = self.co_run(2 * MB)
        assert large.aggregate("fio").dma_leaks > 0
        assert large.aggregate("fio").dca_miss_rate > 0.4

    def test_o4_selective_dca_disable_restores_network(self):
        with_dca = self.co_run(2 * MB)
        ssd_off = self.co_run(2 * MB, dca_off=("fio",))
        assert (
            ssd_off.aggregate("dpdk").p99_latency
            < with_dca.aggregate("dpdk").p99_latency
        )
        # FIO throughput uncompromised (O4).
        assert ssd_off.aggregate("fio").throughput == pytest.approx(
            with_dca.aggregate("fio").throughput, rel=0.1
        )

    def test_full_dca_disable_is_unacceptable_for_network(self):
        ssd_off = self.co_run(2 * MB, dca_off=("fio",))
        all_off = self.co_run(2 * MB, dca_off=("fio", "dpdk"))
        assert (
            all_off.aggregate("dpdk").avg_latency
            > 5 * ssd_off.aggregate("dpdk").avg_latency
        )


class TestO5TrashWays:
    """O5: shrinking a DCA-disabled storage workload to one standard way
    protects bystanders without hurting storage throughput."""

    def run_with_fio_ways(self, n):
        return run_setup(
            [
                FioWorkload(
                    name="fio", block_bytes=2 * MB, cores=4, io_depth=32,
                    priority=PRIORITY_LOW,
                ),
                xmem("xmem", 4.0, cores=2, priority=PRIORITY_HIGH),
            ],
            masks={"fio": (2, n), "xmem": (2, 5)},
            dca_off=("fio",),
            epochs=EPOCHS,
        )

    def test_fewer_trash_ways_protect_bystander(self):
        wide = self.run_with_fio_ways(5)
        narrow = self.run_with_fio_ways(2)
        assert (
            narrow.aggregate("xmem").llc_miss_rate
            < wide.aggregate("xmem").llc_miss_rate
        )

    def test_storage_throughput_insensitive_to_ways(self):
        wide = self.run_with_fio_ways(5)
        narrow = self.run_with_fio_ways(2)
        assert narrow.aggregate("fio").throughput == pytest.approx(
            wide.aggregate("fio").throughput, rel=0.1
        )
