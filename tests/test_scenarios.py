"""Tests for the evaluation scenarios (Table 2/3 combinations)."""

import pytest

from repro.core.a4 import A4Manager
from repro.core.baselines import DefaultManager, IsolateManager
from repro.experiments.scenarios import (
    build_server,
    daemon_interference_workloads,
    hpw_heavy_workloads,
    lpw_heavy_workloads,
    microbenchmark_workloads,
)
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW


def test_microbenchmark_composition():
    workloads = microbenchmark_workloads()
    names = [w.name for w in workloads]
    assert names == ["dpdk-t", "fio", "xmem1", "xmem2", "xmem3"]
    assert workloads[0].priority == PRIORITY_HIGH
    assert workloads[1].priority == PRIORITY_LOW


def test_hpw_heavy_has_seven_hpws_and_four_lpws():
    workloads = hpw_heavy_workloads()
    hpws = [w for w in workloads if w.priority == PRIORITY_HIGH]
    lpws = [w for w in workloads if w.priority == PRIORITY_LOW]
    assert len(hpws) == 7 and len(lpws) == 4


def test_lpw_heavy_has_four_hpws_and_seven_lpws():
    workloads = lpw_heavy_workloads()
    hpws = [w for w in workloads if w.priority == PRIORITY_HIGH]
    lpws = [w for w in workloads if w.priority == PRIORITY_LOW]
    assert len(hpws) == 4 and len(lpws) == 7


def test_scenarios_fit_the_18_core_server():
    for factory in (
        hpw_heavy_workloads,
        lpw_heavy_workloads,
        daemon_interference_workloads,
    ):
        assert sum(w.num_cores for w in factory()) <= 17  # one core for A4


def test_daemon_scenario_composition():
    workloads = daemon_interference_workloads()
    names = {w.name for w in workloads}
    assert {"fastclick", "ksm", "zswap"} <= names
    daemons = [w for w in workloads if w.name in ("ksm", "zswap")]
    assert all(w.priority == PRIORITY_LOW for w in daemons)


def test_build_server_attaches_manager():
    server = build_server(microbenchmark_workloads(), scheme="default")
    assert isinstance(server.manager, DefaultManager)
    server = build_server(microbenchmark_workloads(), scheme="isolate")
    assert isinstance(server.manager, IsolateManager)
    server = build_server(microbenchmark_workloads(), scheme="a4")
    assert isinstance(server.manager, A4Manager)


def test_build_server_rejects_unknown_scheme():
    with pytest.raises(ValueError):
        build_server(microbenchmark_workloads(), scheme="bogus")


def test_scenarios_run_one_epoch():
    server = build_server(hpw_heavy_workloads(), scheme="a4")
    result = server.run(epochs=3, warmup=1)
    assert "fastclick" in result.stream_names()
