"""Tests for the latency percentile tracker."""

import pytest

from repro.telemetry.latency import LatencyTracker, percentile


def test_percentile_nearest_rank():
    values = sorted(float(v) for v in range(1, 101))
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.99) == 100.0
    assert percentile(values, 0.50) == 51.0


def test_percentile_empty():
    assert percentile([], 0.99) == 0.0


def test_percentile_bounds():
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_flush_summarises_and_clears():
    tracker = LatencyTracker()
    for v in (10.0, 20.0, 30.0):
        tracker.record(v)
    stats = tracker.flush()
    assert stats.count == 3
    assert stats.mean == 20.0
    assert stats.p50 == 20.0
    assert tracker.pending() == 0
    assert tracker.flush().count == 0


def test_negative_latency_rejected():
    tracker = LatencyTracker()
    with pytest.raises(ValueError):
        tracker.record(-1.0)


def test_component_breakdown_means():
    tracker = LatencyTracker()
    tracker.record(10.0, components={"queueing": 4.0, "access": 6.0})
    tracker.record(20.0, components={"queueing": 8.0, "access": 12.0})
    stats = tracker.flush()
    assert stats.components == {"queueing": 6.0, "access": 9.0}


def test_p99_tracks_tail():
    tracker = LatencyTracker()
    for _ in range(99):
        tracker.record(1.0)
    tracker.record(1000.0)
    stats = tracker.flush()
    assert stats.p99 == 1000.0
    assert stats.mean < 20.0
