"""Tests for first-class tenancy: spec/set validation, legacy-priority
parity on every seed scenario, build-time core-budget validation, the
IOCA baseline FSM, the N-tenant scenario generator, and tenant-targeted
fault injection."""

import pytest

from repro.experiments.errors import ConfigError, classify
from repro.experiments.scenarios import (
    build_server,
    chaos_workloads,
    daemon_interference_workloads,
    hpw_heavy_workloads,
    lpw_heavy_workloads,
    microbenchmark_workloads,
    validate_core_budgets,
)
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.tenancy import (
    CLASS_BEST_EFFORT,
    CLASS_LATENCY_CRITICAL,
    CLOS_POLICY_RESERVED,
    IMPLICIT_TENANT_NAMES,
    TenantConfigError,
    TenantSet,
    TenantSpec,
    canonical_pair,
)
from repro.workloads.base import Workload


class Dummy(Workload):
    def setup(self, server):
        self.cores = server.alloc_cores(self.num_cores)


# -- TenantSpec validation -------------------------------------------------


def test_spec_rejects_empty_name():
    with pytest.raises(TenantConfigError):
        TenantSpec(name="")


def test_spec_rejects_unknown_class():
    with pytest.raises(TenantConfigError, match="unknown tenant class"):
        TenantSpec(name="t", tenant_class="bronze")


def test_spec_rejects_zero_core_budget():
    with pytest.raises(TenantConfigError, match="core_budget"):
        TenantSpec(name="t", core_budget=0)


def test_spec_reserved_policy_needs_mask():
    with pytest.raises(TenantConfigError, match="clos_mask"):
        TenantSpec(name="t", clos_policy=CLOS_POLICY_RESERVED)


@pytest.mark.parametrize("mask", [(3, 1), (-1, 2), (0, 1, 2)])
def test_spec_rejects_bad_mask_span(mask):
    with pytest.raises(TenantConfigError):
        TenantSpec(name="t", clos_policy=CLOS_POLICY_RESERVED,
                   clos_mask=mask)


@pytest.mark.parametrize(
    "field", ["slo_p99_latency", "slo_min_throughput"]
)
@pytest.mark.parametrize("value", [0, -3.0])
def test_spec_rejects_nonpositive_slos(field, value):
    with pytest.raises(TenantConfigError, match=field):
        TenantSpec(name="t", **{field: value})


def test_spec_priority_is_derived_from_class():
    lc = TenantSpec(name="svc", tenant_class=CLASS_LATENCY_CRITICAL)
    be = TenantSpec(name="batch", tenant_class=CLASS_BEST_EFFORT)
    assert lc.priority == PRIORITY_HIGH and lc.latency_critical
    assert be.priority == PRIORITY_LOW and not be.latency_critical


def test_spec_fingerprint_stable_and_distinct():
    a = TenantSpec(name="t", core_budget=2)
    assert a.fingerprint() == TenantSpec(name="t", core_budget=2).fingerprint()
    assert a.token != TenantSpec(name="t", core_budget=3).token


# -- TenantSet validation --------------------------------------------------


def test_set_rejects_duplicate_names():
    with pytest.raises(TenantConfigError, match="duplicate"):
        TenantSet([TenantSpec(name="t"), TenantSpec(name="t",
                                                    core_budget=2)])


def test_set_rejects_overlapping_reserved_masks():
    a = TenantSpec(name="a", clos_policy=CLOS_POLICY_RESERVED,
                   clos_mask=(0, 4))
    b = TenantSpec(name="b", clos_policy=CLOS_POLICY_RESERVED,
                   clos_mask=(4, 7))
    with pytest.raises(TenantConfigError, match="overlapping"):
        TenantSet([a, b])
    # Adjacent, non-overlapping spans are fine.
    c = TenantSpec(name="b", clos_policy=CLOS_POLICY_RESERVED,
                   clos_mask=(5, 7))
    assert TenantSet([a, c]).total_core_budget == 2


def test_set_rejects_empty():
    with pytest.raises(TenantConfigError):
        TenantSet([])


def test_canonical_pair_shape():
    pair = canonical_pair(hpw_cores=3, lpw_cores=2)
    assert pair.names() == ["hpw", "lpw"]
    assert pair.get("hpw").priority == PRIORITY_HIGH
    assert pair.get("lpw").priority == PRIORITY_LOW
    assert pair.total_core_budget == 5
    assert all(t.implicit for t in pair)


def test_implicit_for_rejects_unknown_priority():
    with pytest.raises(TenantConfigError):
        TenantSpec.implicit_for("MPW", 1)


# -- legacy-priority parity on every seed scenario -------------------------

SEED_SCENARIOS = {
    "microbenchmark": microbenchmark_workloads,
    "hpw_heavy": hpw_heavy_workloads,
    "lpw_heavy": lpw_heavy_workloads,
    "daemon_interference": daemon_interference_workloads,
    "chaos": chaos_workloads,
}


@pytest.mark.parametrize("name", sorted(SEED_SCENARIOS))
def test_seed_scenarios_collapse_to_canonical_pair(name):
    """Every paper-era workload list sees tenancy as the implicit two-
    tenant set; the derived priority strings match the historic constants
    exactly (the bit-identity contract)."""
    workloads = SEED_SCENARIOS[name]()
    tenants = TenantSet.from_workloads(workloads)
    assert set(tenants.names()) <= set(IMPLICIT_TENANT_NAMES.values())
    for workload in workloads:
        assert workload.tenant.implicit
        assert workload.priority == workload.tenant.priority
        assert workload.priority in (PRIORITY_HIGH, PRIORITY_LOW)
        assert (
            workload.tenant.name
            == IMPLICIT_TENANT_NAMES[workload.priority]
        )
    for tenant in tenants:
        demand = sum(
            w.num_cores for w in workloads
            if w.tenant.name == tenant.name
        )
        assert tenant.core_budget == demand


@pytest.mark.parametrize("name", sorted(SEED_SCENARIOS))
def test_seed_scenarios_pass_budget_validation(name):
    workloads = SEED_SCENARIOS[name]()
    tenants = validate_core_budgets(workloads, cores=18)
    assert tenants == TenantSet.from_workloads(workloads)


def test_server_exposes_tenants():
    server = build_server(chaos_workloads(), scheme="a4")
    tenants = server.tenants()
    assert tenants.names() == ["hpw", "lpw"]
    hpw_names = {w.name for w in server.tenant_workloads("hpw")}
    assert hpw_names == {
        w.name for w in server.workloads if w.priority == PRIORITY_HIGH
    }


# -- build-time core-budget validation (ConfigError) -----------------------


def test_validate_names_oversubscribed_tenant():
    tenant = TenantSpec(name="svc", core_budget=1)
    workloads = [Dummy("a", cores=2, tenant=tenant)]
    with pytest.raises(ConfigError, match="svc"):
        validate_core_budgets(workloads, cores=18)


def test_validate_rejects_total_over_platform():
    workloads = [
        Dummy("a", cores=10, priority=PRIORITY_HIGH),
        Dummy("b", cores=10, priority=PRIORITY_LOW),
    ]
    with pytest.raises(ConfigError, match="20 cores"):
        validate_core_budgets(workloads, cores=18)


def test_build_server_raises_config_error_before_setup():
    with pytest.raises(ConfigError):
        build_server(microbenchmark_workloads(), cores=4)


def test_config_error_classifies_as_config():
    try:
        build_server(microbenchmark_workloads(), cores=4)
    except ConfigError as exc:
        assert classify(exc) == "config"
    else:  # pragma: no cover
        pytest.fail("expected ConfigError")


# -- IOCA FSM units --------------------------------------------------------


def make_ioca(**kwargs):
    from repro.core.ioca import IocaManager

    return IocaManager(**kwargs)


def test_ioca_fsm_fires_after_patience():
    from repro.core.ioca import STATE_ADJUST, STATE_COOLDOWN, STATE_MONITOR

    mgr = make_ioca(patience=2, cooldown=3)
    assert mgr.state == STATE_MONITOR
    assert mgr.fsm_step(True) is False  # streak 1 < patience
    assert mgr.fsm_step(True) is True  # fires through transient ADJUST
    assert mgr.state == STATE_COOLDOWN
    assert mgr.transitions == [
        (STATE_MONITOR, STATE_ADJUST),
        (STATE_ADJUST, STATE_COOLDOWN),
    ]


def test_ioca_fsm_streak_resets_on_calm_epoch():
    mgr = make_ioca(patience=3)
    assert mgr.fsm_step(True) is False
    assert mgr.fsm_step(True) is False
    assert mgr.fsm_step(False) is False  # calm epoch resets the streak
    assert mgr.fsm_step(True) is False
    assert mgr.fsm_step(True) is False
    assert mgr.fsm_step(True) is True


def test_ioca_fsm_cooldown_ignores_pressure():
    from repro.core.ioca import STATE_COOLDOWN, STATE_MONITOR

    mgr = make_ioca(patience=1, cooldown=2)
    assert mgr.fsm_step(True) is True
    assert mgr.state == STATE_COOLDOWN
    # Pressure during cooldown never fires; the countdown runs instead.
    assert mgr.fsm_step(True) is False
    assert mgr.state == STATE_COOLDOWN
    assert mgr.fsm_step(True) is False
    assert mgr.state == STATE_MONITOR
    # Back in MONITOR the streak starts from zero again.
    assert mgr.fsm_step(True) is True


def test_ioca_partitions_cover_llc():
    from repro.experiments.tenants import build_tenant_server

    server = build_tenant_server(4, scheme="ioca", seed=11)
    spans = server.manager.tenant_spans()
    assert len(spans) == 4
    assert sum(spans.values()) == server.manager.total_ways
    assert all(s >= server.manager.min_ways for s in spans.values())
    result = server.run(6)
    assert server.manager.robustness_stats()["ioca_adjustments"] == \
        server.manager.adjustments
    assert result.samples


# -- N-tenant generator determinism ----------------------------------------


def test_plan_tenants_is_deterministic():
    from repro.experiments.tenants import plan_tenants, traffic_trace

    a = plan_tenants(6, seed=42)
    b = plan_tenants(6, seed=42)
    assert a == b
    assert traffic_trace(6, seed=42) == traffic_trace(6, seed=42)
    assert plan_tenants(6, seed=43) != a


def test_plan_tenants_budget_and_classes():
    from repro.experiments.tenants import plan_tenants
    from repro.platform import DEFAULT_PLATFORM

    plans = plan_tenants(5, seed=7, spare_cores=2)
    names = [p.spec.name for p in plans]
    assert len(set(names)) == 5
    total = sum(p.spec.core_budget for p in plans)
    assert total == DEFAULT_PLATFORM.cores - 2
    classes = [p.spec.tenant_class for p in plans]
    assert classes[0] == CLASS_LATENCY_CRITICAL
    assert classes[1] == CLASS_BEST_EFFORT
    assert all(p.spec.slo_p99_latency for p in plans
               if p.spec.latency_critical)


def test_tenant_workloads_pass_validation():
    from repro.experiments.tenants import plan_tenants, tenant_workloads

    plans = plan_tenants(6, seed=3)
    workloads = tenant_workloads(plans)
    tenants = validate_core_budgets(workloads, cores=18)
    assert len(tenants) == 6
    assert not any(t.implicit for t in tenants)


# -- tenant-targeted fault injection ---------------------------------------


def test_fault_plan_describe_names_target():
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.scaled(0.5, target_tenant="lpw")
    assert "target_tenant=lpw" in plan.describe()
    assert FaultPlan.scaled(0.5).describe().count("target_tenant") == 0


def test_targeted_chaos_spares_other_tenants():
    """A target no workload matches suppresses every telemetry and device
    fault while machine-wide control-plane faults keep firing."""
    from repro.faults.chaos import run_chaos

    res = run_chaos(1.0, epochs=10, fault_tenant="no-such-tenant")
    telemetry_and_device = (
        "samples_dropped", "samples_stale", "samples_corrupted",
        "zero_cycle_epochs", "nic_storms", "nvme_stalls", "phase_flips",
    )
    assert all(res.faults.get(k, 0) == 0 for k in telemetry_and_device)
    assert res.faults.get("cat_failures", 0) > 0


def test_targeted_chaos_hits_only_target():
    from repro.faults.chaos import run_chaos

    res = run_chaos(1.0, epochs=10, fault_tenant="lpw")
    assert sum(res.faults.values()) > 0
    assert res.ok
