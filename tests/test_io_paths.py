"""Tests for the extended I/O paths: DPDK forwarding (egress) and
buffered vs direct storage I/O."""

import pytest

from repro.experiments.harness import Server
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload

KB = 1024


def run_workload(workload, epochs=5, cores=None):
    server = Server(cores=cores or workload.num_cores + 2)
    server.add_workload(workload)
    return server, server.run(epochs=epochs, warmup=1)


class TestForwarding:
    def test_forward_requires_touch(self):
        with pytest.raises(ValueError):
            DpdkWorkload(touch=False, forward=True)

    def test_forwarding_generates_egress_reads(self):
        workload = DpdkWorkload(name="fwd", touch=True, forward=True, cores=2)
        server, result = run_workload(workload)
        counters = server.counters.stream("fwd")
        assert counters.dma_reads > 0
        # Every consumed packet is transmitted: egress reads >= packet lines.
        assert counters.dma_reads >= counters.io_requests_completed * 16

    def test_forwarding_serves_tx_mostly_from_cache(self):
        workload = DpdkWorkload(name="fwd", touch=True, forward=True, cores=2)
        server, result = run_workload(workload)
        counters = server.counters.stream("fwd")
        # Egress reads of just-processed packets rarely fall to memory.
        assert counters.mem_reads < counters.dma_reads * 0.5

    def test_plain_rx_has_no_egress(self):
        workload = DpdkWorkload(name="rx", touch=True, forward=False, cores=2)
        server, result = run_workload(workload)
        assert server.counters.stream("rx").dma_reads == 0


class TestBufferedIo:
    def test_io_mode_validation(self):
        with pytest.raises(ValueError):
            FioWorkload(io_mode="mmap")

    def test_buffered_mode_adds_copy_traffic(self):
        direct = FioWorkload(
            name="fio", block_bytes=128 * KB, cores=2, io_mode="direct"
        )
        buffered = FioWorkload(
            name="fio", block_bytes=128 * KB, cores=2, io_mode="buffered"
        )
        _, direct_result = run_workload(direct)
        server_b, buffered_result = run_workload(buffered)
        d = direct_result.aggregate("fio")
        b = buffered_result.aggregate("fio")
        # Same device-bound throughput (the copy is cheap enough)...
        assert b.throughput == pytest.approx(d.throughput, rel=0.25)
        # ...but roughly twice the cache traffic per block.
        d_accesses = sum(
            s.streams["fio"].counters.mlc_hits
            + s.streams["fio"].counters.mlc_misses
            for s in direct_result.window
        )
        b_accesses = sum(
            s.streams["fio"].counters.mlc_hits
            + s.streams["fio"].counters.mlc_misses
            for s in buffered_result.window
        )
        assert b_accesses > 2.0 * d_accesses

    def test_buffered_blocks_still_complete(self):
        workload = FioWorkload(
            name="fio", block_bytes=32 * KB, cores=1, io_mode="buffered"
        )
        server, result = run_workload(workload)
        assert result.aggregate("fio").requests > 0
