"""Tests for the optional next-line prefetcher."""

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.rdt.cat import CacheAllocation
from repro.telemetry.counters import CounterBank
from repro.uncore.memory import MemoryController


def build(prefetch):
    bank = CounterBank()
    cat = CacheAllocation()
    memory = MemoryController(bank)
    cfg = HierarchyConfig(cores=2, next_line_prefetch=prefetch)
    return CacheHierarchy(cfg, cat, memory, bank), bank


def test_off_by_default():
    hierarchy, bank = build(prefetch=False)
    hierarchy.cpu_access(0.0, 0, 100, "s")
    assert hierarchy.mlcs[0].peek(101) is None
    assert bank.stream("s").prefetch_fills == 0


def test_miss_prefetches_next_line():
    hierarchy, bank = build(prefetch=True)
    hierarchy.cpu_access(0.0, 0, 100, "s")
    assert hierarchy.mlcs[0].peek(101) is not None
    assert bank.stream("s").prefetch_fills == 1
    # The prefetched line is a free hit afterwards.
    before = bank.stream("s").mlc_hits
    hierarchy.cpu_access(1.0, 0, 101, "s")
    assert bank.stream("s").mlc_hits == before + 1


def test_prefetch_skips_cached_lines():
    hierarchy, bank = build(prefetch=True)
    hierarchy.cpu_access(0.0, 0, 101, "s")  # brings 101 (and 102)
    fills_before = bank.stream("s").prefetch_fills
    hierarchy.cpu_access(1.0, 0, 100, "s")  # next line 101 already in MLC
    assert bank.stream("s").prefetch_fills == fills_before


def test_prefetch_not_triggered_by_io_reads():
    hierarchy, bank = build(prefetch=True)
    hierarchy.cpu_access(0.0, 0, 500, "nic", io_read=True)
    assert bank.stream("nic").prefetch_fills == 0


def test_sequential_stream_halves_demand_misses():
    hierarchy_off, bank_off = build(prefetch=False)
    hierarchy_on, bank_on = build(prefetch=True)
    for addr in range(400):
        hierarchy_off.cpu_access(0.0, 0, addr, "s")
        hierarchy_on.cpu_access(0.0, 0, addr, "s")
    assert bank_on.stream("s").mlc_misses < 0.6 * bank_off.stream("s").mlc_misses
