"""Tests for the LLC data array: masked victim selection, migration."""

import pytest

from repro.cache.llc import LastLevelCache, LlcConfig


def make(sets=4):
    return LastLevelCache(LlcConfig(sets=sets))


def test_config_validates_special_ways():
    with pytest.raises(ValueError):
        LlcConfig(ways=11, dca_ways=(0, 11))
    with pytest.raises(ValueError):
        LlcConfig(dca_ways=(0, 1), inclusive_ways=(1, 2))


def test_standard_ways_excludes_special():
    cfg = LlcConfig()
    assert cfg.standard_ways == tuple(range(2, 9))


def test_allocate_respects_allowed_ways():
    llc = make()
    for i in range(8):
        line, _ = llc.allocate(i * 4, "s", allowed_ways=(5, 6))
        assert line.way in (5, 6)


def test_allocate_prefers_empty_way():
    llc = make()
    line1, victim1 = llc.allocate(0, "s", allowed_ways=(3, 4))
    line2, victim2 = llc.allocate(4, "s", allowed_ways=(3, 4))  # same set
    assert victim1 is None and victim2 is None
    assert {line1.way, line2.way} == {3, 4}


def test_allocate_evicts_lru_within_mask():
    llc = make(sets=1)
    llc.allocate(0, "s", allowed_ways=(3, 4))
    llc.allocate(1, "s", allowed_ways=(3, 4))
    llc.lookup(0)  # refresh addr 0
    _, victim = llc.allocate(2, "s", allowed_ways=(3, 4))
    assert victim is not None and victim.addr == 1


def test_allocate_never_evicts_outside_mask():
    llc = make(sets=1)
    protected, _ = llc.allocate(0, "other", allowed_ways=(0,))
    for addr in range(1, 10):
        _, victim = llc.allocate(addr, "s", allowed_ways=(5, 6))
        assert victim is None or victim.way in (5, 6)
    assert llc.lookup(0, touch=False) is protected


def test_double_allocate_same_addr_raises():
    llc = make()
    llc.allocate(7, "s", allowed_ways=(2,))
    with pytest.raises(ValueError):
        llc.allocate(7, "s", allowed_ways=(3,))


def test_remove():
    llc = make()
    line, _ = llc.allocate(9, "s", allowed_ways=(2,))
    llc.remove(line)
    assert llc.lookup(9) is None


def test_migrate_to_inclusive_moves_line():
    llc = make()
    line, _ = llc.allocate(5, "s", allowed_ways=(0,))
    victim = llc.migrate_to_inclusive(line)
    assert victim is None
    assert line.way in LlcConfig().inclusive_ways
    assert llc.lookup(5, touch=False) is line


def test_migrate_already_inclusive_is_noop():
    llc = make()
    line, _ = llc.allocate(5, "s", allowed_ways=(9,))
    assert llc.migrate_to_inclusive(line) is None
    assert line.way == 9


def test_migrate_evicts_inclusive_occupant():
    llc = make(sets=1)
    llc.allocate(1, "victim1", allowed_ways=(9,))
    llc.allocate(2, "victim2", allowed_ways=(10,))
    line, _ = llc.allocate(3, "io", allowed_ways=(0,))
    victim = llc.migrate_to_inclusive(line)
    assert victim is not None and victim.stream in ("victim1", "victim2")
    assert line.way in (9, 10)


def test_occupancy_reports():
    llc = make()
    llc.allocate(0, "a", allowed_ways=(2,))
    llc.allocate(1, "a", allowed_ways=(2,))
    llc.allocate(2, "b", allowed_ways=(3,))
    assert llc.occupancy_by_stream() == {"a": 2, "b": 1}
    by_way = llc.occupancy_by_way()
    assert by_way[2] == 2 and by_way[3] == 1


def test_touch_refreshes_recency():
    llc = make(sets=1)
    line0, _ = llc.allocate(0, "s", allowed_ways=(3, 4))
    llc.allocate(1, "s", allowed_ways=(3, 4))
    llc.touch(line0)
    _, victim = llc.allocate(2, "s", allowed_ways=(3, 4))
    assert victim.addr == 1
