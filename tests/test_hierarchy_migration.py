"""The paper's core microarchitectural discovery (O1): consumed DMA lines
migrate into the inclusive ways, contending with whoever lives there."""

from repro import config
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.llc import LlcConfig


def test_consumed_dca_line_migrates_to_inclusive_way(hierarchy):
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    assert hierarchy.llc.lookup(100, touch=False).way in config.DCA_WAYS
    hierarchy.cpu_access(1.0, 0, 100, "nic", io_read=True)
    line = hierarchy.llc.lookup(100, touch=False)
    assert line.way in config.INCLUSIVE_WAYS
    assert line.holders == {0}


def test_migration_evicts_inclusive_way_occupants(hierarchy, cat, bank):
    # A bystander explicitly allocated to the inclusive ways (way[9:10]).
    cat.set_mask(1, config.INCLUSIVE_WAYS)
    cat.associate(1, 1)
    sets = hierarchy.llc.cfg.sets
    base = 5000
    # Two bystander lines into the inclusive ways of set (base % sets):
    for i in (0, 1):
        addr = base + i * sets * 64  # same set, distinct tags
        hierarchy.cpu_access(0.0, 1, addr, "bystander")
        # displace from MLC so it lands in the LLC
        for j in range(1, hierarchy.cfg.mlc_ways + 1):
            hierarchy.cpu_access(0.0, 1, addr + j * hierarchy.cfg.mlc_sets, "bystander")
    occupancy = [
        line
        for line in hierarchy.llc.resident()
        if line.stream == "bystander" and line.way in config.INCLUSIVE_WAYS
    ]
    assert occupancy, "bystander must occupy inclusive ways first"

    # Now DMA-write + consume I/O lines mapping to the same set.
    evictions_before = bank.stream("bystander").llc_evictions_suffered
    target_set = base % sets
    for i in range(4):
        addr = (9000 // sets + i) * sets + target_set
        assert addr % sets == target_set
        hierarchy.dma_write(1.0, addr, "nic", allocating=True)
        hierarchy.cpu_access(1.0, 0, addr, "nic", io_read=True)
    assert bank.stream("bystander").llc_evictions_suffered > evictions_before
    assert bank.stream("nic").migrations >= 1


def test_migration_ignores_cat_masks(hierarchy, cat):
    # Even when the consuming core's CLOS excludes the inclusive ways,
    # the directory constraint moves the line there.
    cat.set_mask(1, range(2, 5))
    cat.associate(0, 1)
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    hierarchy.cpu_access(1.0, 0, 100, "nic", io_read=True)
    assert hierarchy.llc.lookup(100, touch=False).way in config.INCLUSIVE_WAYS


def test_no_migration_without_consumption(hierarchy):
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    # Untouched by any CPU: line remains in the DCA ways (DPDK-NT behaviour).
    assert hierarchy.llc.lookup(100, touch=False).way in config.DCA_WAYS


def test_ablation_flag_disables_migration(bank, cat, memory):
    cfg = HierarchyConfig(cores=2, llc=LlcConfig(inclusive_migration=False))
    hierarchy = CacheHierarchy(cfg, cat, memory, bank)
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    hierarchy.cpu_access(1.0, 0, 100, "nic", io_read=True)
    line = hierarchy.llc.lookup(100, touch=False)
    assert line.way in config.DCA_WAYS
    assert bank.stream("nic").migrations == 0


def test_dma_bloat_goes_to_cat_ways_after_mlc_eviction(hierarchy, cat, bank):
    cat.set_mask(1, range(5, 7))
    cat.associate(0, 1)
    sets = hierarchy.cfg.mlc_sets
    ways = hierarchy.cfg.mlc_ways
    # Consume an I/O line, then evict it from the MLC by conflict.
    hierarchy.dma_write(0.0, 4096, "nic", allocating=True)
    hierarchy.cpu_access(0.5, 0, 4096, "nic", io_read=True)
    # Remove its LLC (inclusive-way) copy by migrating other io lines there.
    llc_sets = hierarchy.llc.cfg.sets
    for i in range(1, 4):
        addr = 4096 + i * llc_sets
        hierarchy.dma_write(1.0, addr, "nic2", allocating=True)
        hierarchy.cpu_access(1.0, 1, addr, "nic2", io_read=True)
    assert hierarchy.llc.lookup(4096, touch=False) is None
    # Now evict from the MLC: should allocate into ways 5-6 as DMA bloat.
    before = bank.stream("nic").dma_bloats
    for j in range(1, ways + 1):
        hierarchy.cpu_access(2.0, 0, 4096 + j * sets, "nic")
    line = hierarchy.llc.lookup(4096, touch=False)
    assert line is not None and line.way in (5, 6)
    assert line.consumed and line.io
    assert bank.stream("nic").dma_bloats == before + 1


def test_inclusive_downgrade_preserves_mlc_copy(hierarchy, bank):
    # A consumed I/O line resident in MLC + inclusive way loses its LLC copy
    # when other migrations displace it; the MLC copy must survive.
    sets = hierarchy.llc.cfg.sets
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    hierarchy.cpu_access(0.5, 0, 100, "nic", io_read=True)
    assert hierarchy.llc.lookup(100, touch=False).holders == {0}
    for i in range(1, 4):
        addr = 100 + i * sets
        hierarchy.dma_write(1.0, addr, "nic2", allocating=True)
        hierarchy.cpu_access(1.0, 1, addr, "nic2", io_read=True)
    assert hierarchy.llc.lookup(100, touch=False) is None
    assert hierarchy.mlcs[0].peek(100) is not None
    assert bank.stream("nic").inclusive_downgrades >= 1
