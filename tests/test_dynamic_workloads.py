"""Dynamic launch/termination (paper Fig. 9 step 1, §5.6 condition 1)."""

from repro.core.a4 import A4Manager, PHASE_BASELINE
from repro.core.baselines import IsolateManager
from repro.core.policy import A4Policy
from repro.experiments.harness import Server
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload
from repro.workloads.xmem import xmem

MB = 1024 * 1024


def test_launch_triggers_a4_reallocation():
    server = Server(cores=10)
    server.add_workload(xmem("hp", 1.0, cores=1, priority="HPW"))
    server.add_workload(xmem("lp", 1.0, cores=1, priority="LPW"))
    manager = A4Manager(A4Policy())
    server.set_manager(manager)
    server.run(epochs=6, warmup=2)
    # No I/O HPW yet: LP Zone sits at the right edge incl. inclusive ways.
    assert manager.layout.lp_right == 10
    reallocs_before = manager.reallocations

    server.add_workload(
        DpdkWorkload(name="net", touch=True, cores=4, priority="HPW")
    )
    assert manager.reallocations == reallocs_before + 1
    assert manager.phase == PHASE_BASELINE
    # I/O HPW present now: safeguarding kicks in.
    assert manager.layout.lp_right == 8
    assert manager.ways_of("lp")[-1] == 8

    server.run(epochs=6, warmup=2)
    assert manager.ways_of("net") == tuple(range(0, 11))


def test_termination_restores_layout_and_drops_antagonist_state():
    server = Server(cores=10)
    server.add_workload(
        DpdkWorkload(name="net", touch=True, cores=2, priority="HPW")
    )
    fio = FioWorkload(name="fio", block_bytes=2 * MB, cores=2, priority="LPW")
    server.add_workload(fio)
    manager = A4Manager(A4Policy())
    server.set_manager(manager)
    server.run(epochs=10, warmup=2)
    assert "fio" in manager.antagonists

    server.terminate_workload("fio")
    assert "fio" not in manager.antagonists
    assert "fio" not in manager.demoted
    assert not any(w.name == "fio" for w in server.workloads)


def test_isolate_repartitions_on_launch():
    server = Server(cores=10)
    server.add_workload(xmem("a", 1.0, cores=2))
    manager = IsolateManager()
    server.set_manager(manager)
    assert server.cat.mask(server.clos_of("a")) == tuple(range(11))

    server.add_workload(xmem("b", 1.0, cores=2))
    mask_a = server.cat.mask(server.clos_of("a"))
    mask_b = server.cat.mask(server.clos_of("b"))
    assert set(mask_a).isdisjoint(mask_b)
    assert len(mask_a) + len(mask_b) == 11


def test_pcm_stops_reporting_terminated_workload_info():
    server = Server(cores=4)
    server.add_workload(xmem("a", 1.0, cores=1))
    server.terminate_workload("a")
    assert "a" not in server.pcm.infos
