"""Tests for the scheme factory and variant naming."""

import pytest

from repro.core.a4 import A4Manager
from repro.core.baselines import DefaultManager, IsolateManager
from repro.core.policy import A4Policy
from repro.core.variants import A4_VARIANTS, SCHEMES, a4_variant, make_manager


def test_all_schemes_constructible():
    for scheme in SCHEMES:
        manager = make_manager(scheme)
        assert manager is not None


def test_factory_types():
    assert isinstance(make_manager("default"), DefaultManager)
    assert isinstance(make_manager("isolate"), IsolateManager)
    assert isinstance(make_manager("a4"), A4Manager)
    assert isinstance(make_manager("a4-b"), A4Manager)


def test_variant_names():
    assert A4_VARIANTS == ("a4-a", "a4-b", "a4-c", "a4-d")
    for stage in "abcd":
        assert a4_variant(stage).name == f"a4-{stage}"


def test_a4_d_equals_full_a4_policy():
    full = make_manager("a4").policy
    staged = make_manager("a4-d").policy
    assert staged.safeguard_io_buffers == full.safeguard_io_buffers
    assert staged.selective_dca_disable == full.selective_dca_disable
    assert staged.pseudo_llc_bypass == full.pseudo_llc_bypass


def test_custom_policy_threads_through():
    policy = A4Policy(hpw_llc_hit_thr=0.05)
    assert make_manager("a4", policy).policy.hpw_llc_hit_thr == 0.05
    # Variant flags are applied on top of the custom policy.
    variant = make_manager("a4-a", policy)
    assert variant.policy.hpw_llc_hit_thr == 0.05
    assert not variant.policy.safeguard_io_buffers


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError):
        make_manager("cachemind")
    with pytest.raises(ValueError):
        a4_variant("z")
    with pytest.raises(ValueError):
        a4_variant("ab")
