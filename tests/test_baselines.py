"""Tests for the Default and Isolate baseline managers."""

from repro.core.baselines import DefaultManager, IsolateManager
from repro.experiments.harness import Server
from repro.workloads.xmem import xmem


def make_server(workloads):
    server = Server(cores=sum(w.num_cores for w in workloads) + 1)
    for w in workloads:
        server.add_workload(w)
    return server


def test_default_leaves_full_masks():
    server = make_server([xmem("a", 1.0, cores=2), xmem("b", 1.0, cores=1)])
    server.set_manager(DefaultManager())
    server.run(epochs=3, warmup=1)
    assert server.cat.mask(server.clos_of("a")) == tuple(range(11))
    assert server.cat.mask(server.clos_of("b")) == tuple(range(11))


def test_isolate_partitions_proportionally():
    server = make_server(
        [xmem("big", 1.0, cores=4), xmem("small", 1.0, cores=1)]
    )
    server.set_manager(IsolateManager())
    big = server.cat.mask(server.clos_of("big"))
    small = server.cat.mask(server.clos_of("small"))
    assert len(big) > len(small)
    assert set(big).isdisjoint(small)
    assert len(big) + len(small) == 11


def test_isolate_handles_many_workloads():
    workloads = [xmem(f"w{i}", 0.5, cores=1) for i in range(6)]
    server = make_server(workloads)
    server.set_manager(IsolateManager())
    masks = [server.cat.mask(server.clos_of(w.name)) for w in workloads]
    for mask in masks:
        assert len(mask) >= 1
    covered = set()
    for mask in masks:
        covered.update(mask)
    assert covered <= set(range(11))


def test_isolate_is_static():
    server = make_server([xmem("a", 1.0, cores=1), xmem("b", 1.0, cores=1)])
    server.set_manager(IsolateManager())
    before = server.cat.mask(server.clos_of("a"))
    server.run(epochs=4, warmup=1)
    assert server.cat.mask(server.clos_of("a")) == before
