"""Property-based tests (hypothesis) on the core data structures and the
cache hierarchy's invariants."""

from hypothesis import given, settings, strategies as st

from repro import config
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.llc import LastLevelCache, LlcConfig
from repro.rdt.cat import CacheAllocation
from repro.telemetry.counters import CounterBank
from repro.telemetry.latency import LatencyTracker, percentile
from repro.uncore.memory import MemoryController


def build_hierarchy(cores=2):
    bank = CounterBank()
    cat = CacheAllocation()
    memory = MemoryController(bank)
    cfg = HierarchyConfig(cores=cores, llc=LlcConfig(sets=16), mlc_sets=4, mlc_ways=2)
    return CacheHierarchy(cfg, cat, memory, bank), bank, cat


# An operation stream: (op, core, addr) triples over a small address space.
operations = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "dma_alloc", "dma_mem", "dma_read", "io_read"]),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=127),
    ),
    max_size=200,
)


def apply_ops(hierarchy, ops):
    now = 0.0
    for op, core, addr in ops:
        now += 1.0
        if op == "read":
            hierarchy.cpu_access(now, core, addr, "s")
        elif op == "write":
            hierarchy.cpu_access(now, core, addr, "s", write=True)
        elif op == "io_read":
            hierarchy.cpu_access(now, core, addr, "io", io_read=True)
        elif op == "dma_alloc":
            hierarchy.dma_write(now, addr, "io", allocating=True)
        elif op == "dma_mem":
            hierarchy.dma_write(now, addr, "io", allocating=False)
        elif op == "dma_read":
            hierarchy.dma_read(now, addr, "io")


@settings(max_examples=60, deadline=None)
@given(operations)
def test_hierarchy_structural_invariants(ops):
    hierarchy, bank, cat = build_hierarchy()
    apply_ops(hierarchy, ops)

    seen = set()
    for line in hierarchy.llc.resident():
        # (1) no duplicate addresses in the LLC
        assert line.addr not in seen
        seen.add(line.addr)
        # (2) every resident line is indexed where it claims to be
        wayset = hierarchy.llc.set_of(line.addr)
        assert wayset.slots[line.way] is line
        # (3) inclusive lines only in inclusive ways
        if line.holders:
            assert line.way in hierarchy.llc.cfg.inclusive_ways
            # (4) holders really hold the line
            for core in line.holders:
                assert hierarchy.mlcs[core].peek(line.addr) is not None

    # (5) snoop-filter entries match MLC contents
    for core, mlc in enumerate(hierarchy.mlcs):
        for mlc_line in mlc.resident():
            entry = hierarchy.sf.entry(mlc_line.addr)
            assert entry is not None and core in entry.holders


@settings(max_examples=60, deadline=None)
@given(operations)
def test_counters_are_consistent(ops):
    hierarchy, bank, cat = build_hierarchy()
    apply_ops(hierarchy, ops)
    for counters in bank.streams.values():
        # misses at the MLC are the only way to reach the LLC level
        assert counters.llc_hits + counters.llc_misses <= counters.mlc_misses + counters.dma_writes
        assert counters.io_read_misses <= counters.io_reads
        assert counters.dma_leaks <= counters.dma_writes
        assert 0.0 <= counters.llc_hit_rate <= 1.0
        assert 0.0 <= counters.dca_miss_rate <= 1.0


@settings(max_examples=40, deadline=None)
@given(operations, st.integers(min_value=0, max_value=10))
def test_masked_fills_stay_inside_mask_or_inclusive(ops, left):
    hierarchy, bank, cat = build_hierarchy()
    right = min(left + 2, 10)
    cat.set_mask(1, range(left, right + 1))
    cat.associate(0, 1)
    cat.associate(1, 1)
    apply_ops(hierarchy, ops)
    allowed = set(range(left, right + 1)) | set(hierarchy.llc.cfg.inclusive_ways)
    allowed |= set(hierarchy.llc.cfg.dca_ways)  # DMA allocations ignore CAT
    for line in hierarchy.llc.resident():
        assert line.way in allowed


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=300))
def test_percentile_properties(values):
    ordered = sorted(values)
    p50 = percentile(ordered, 0.5)
    p99 = percentile(ordered, 0.99)
    assert ordered[0] <= p50 <= ordered[-1]
    assert p50 <= p99 <= ordered[-1]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100))
def test_latency_tracker_mean_bounds(values):
    tracker = LatencyTracker()
    for v in values:
        tracker.record(v)
    stats = tracker.flush()
    # One-ULP slack: float summation can round the mean of identical
    # values just below min(values).
    eps = 1e-9 * max(1.0, max(values))
    assert min(values) - eps <= stats.mean <= max(values) + eps
    assert stats.count == len(values)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=9),
)
def test_cat_masks_always_contiguous(a, b):
    cat = CacheAllocation()
    first, last = min(a, b), max(a, b)
    cat.set_mask(1, range(first, last + 1))
    mask = cat.mask(1)
    assert mask == tuple(range(first, last + 1))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
def test_llc_occupancy_never_exceeds_geometry(addrs):
    llc = LastLevelCache(LlcConfig(sets=8))
    for addr in addrs:
        if llc.lookup(addr) is None:
            llc.allocate(addr, "s", allowed_ways=range(11))
    by_way = llc.occupancy_by_way()
    assert sum(by_way.values()) <= 8 * 11
    for line in llc.resident():
        assert 0 <= line.way < 11


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=40))
def test_capacity_scaling_monotonic(mb):
    smaller = config.lines_for_paper_bytes(mb * 1024 * 1024)
    larger = config.lines_for_paper_bytes((mb + 1) * 1024 * 1024)
    assert larger >= smaller >= 1
