"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_schedule_runs_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, lambda s: order.append("b"))
    sim.schedule(1.0, lambda s: order.append("a"))
    sim.schedule(9.0, lambda s: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.schedule(3.0, lambda s, t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_cannot_schedule_into_the_past():
    sim = Simulator()
    sim.schedule(10.0, lambda s: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule(5.0, lambda s: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda s: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda s: fired.append(10))
    sim.schedule(20.0, lambda s: fired.append(20))
    sim.run_until(15.0)
    assert fired == [10]
    assert sim.now == 15.0
    sim.run_until(25.0)
    assert fired == [10, 20]


def test_process_yields_delays():
    sim = Simulator()
    ticks = []

    def body():
        for _ in range(3):
            ticks.append(sim.now)
            yield 10.0

    sim.spawn("p", body())
    sim.run()
    assert ticks == [0.0, 10.0, 20.0]


def test_process_negative_delay_raises():
    sim = Simulator()

    def body():
        yield -1.0

    sim.spawn("bad", body())
    with pytest.raises(ValueError):
        sim.run()


def test_process_finish_callback():
    sim = Simulator()
    done = []

    def body():
        yield 1.0

    process = sim.spawn("p", body())
    process.on_finish(lambda s: done.append(s.now))
    sim.run()
    assert process.finished
    assert done == [1.0]


def test_call_in_is_relative():
    sim = Simulator()
    seen = []
    sim.schedule(7.0, lambda s: s.call_in(3.0, lambda s2: seen.append(s2.now)))
    sim.run()
    assert seen == [10.0]


def test_every_repeats_until_horizon():
    sim = Simulator()
    count = []
    sim.every(10.0, lambda s: count.append(s.now))
    sim.run_until(35.0)
    assert count == [10.0, 20.0, 30.0]


def test_every_rejects_nonpositive_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.every(0.0, lambda s: None)


def test_run_guard_detects_livelock():
    sim = Simulator()

    def forever():
        while True:
            yield 1.0

    sim.spawn("loop", forever())
    with pytest.raises(RuntimeError):
        sim.run(max_events=100)


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False
