"""Targeted tests for paths the main files leave uncovered."""

import pytest

from repro.experiments.harness import Server
from repro.experiments.report import FigureResult
from repro.experiments.sweep import average_figure, run_repeated
from repro.workloads.xmem import xmem


class TestSweepErrorPaths:
    def test_average_figure_requires_seeds(self):
        with pytest.raises(ValueError):
            average_figure(lambda seed: FigureResult("f", "t", ["c"]), seeds=())

    def test_average_figure_rejects_shape_drift(self):
        def runner(seed):
            result = FigureResult("f", "t", ["v"])
            for _ in range(seed):  # row count varies with the seed
                result.add_row(v=1.0)
            return result

        with pytest.raises(RuntimeError):
            average_figure(runner, seeds=(1, 2))

    def test_average_figure_preserves_notes(self):
        def runner(seed):
            result = FigureResult("f", "t", ["v"], notes=["hello"])
            result.add_row(v=float(seed))
            return result

        averaged = average_figure(runner, seeds=(2, 4))
        assert averaged.notes == ["hello"]
        assert averaged.rows[0]["v"] == 3.0


class TestManagerEdges:
    def test_manager_convenience_accessors(self):
        from repro.core.baselines import DefaultManager

        server = Server(cores=3)
        server.add_workload(xmem("a", 1.0, cores=1))
        manager = DefaultManager()
        server.set_manager(manager)
        manager.set_ways("a", 3, 5)
        assert manager.ways_of("a") == (3, 4, 5)

    def test_manager_port_dca_toggle(self):
        from repro.core.baselines import DefaultManager
        from repro.workloads.dpdk import DpdkWorkload

        server = Server(cores=4)
        workload = DpdkWorkload(name="net", cores=2)
        server.add_workload(workload)
        manager = DefaultManager()
        server.set_manager(manager)
        manager.set_port_dca(workload.port_id, enabled=False)
        assert not server.pcie.port(workload.port_id).dca_enabled
        manager.set_port_dca(workload.port_id, enabled=True)
        assert server.pcie.port(workload.port_id).dca_enabled


class TestA4NetworkBloatRelease:
    def test_treatment_released_when_bloat_subsides(self):
        from repro.core.a4 import A4Manager
        from repro.core.policy import A4Policy
        from tests.test_a4_fsm import FakeServer, FakeWorkload, make_sample

        net = FakeWorkload("net", kind="network-io")
        manager = A4Manager(A4Policy(network_bloat_bypass=True))
        manager.attach(FakeServer([net]))
        bloaty = {"net": dict(dma_writes=1000, dma_bloats=400)}
        manager.on_epoch(
            make_sample(0, {"net": 0.9}, bloaty, kinds={"net": "network-io"})
        )
        assert "net" in manager.bloat_treated
        calm = {"net": dict(dma_writes=1000, dma_bloats=10)}
        manager.on_epoch(
            make_sample(1, {"net": 0.9}, calm, kinds={"net": "network-io"})
        )
        assert "net" not in manager.bloat_treated


class TestRunRepeatedMemoryStats:
    def test_memory_bandwidth_tracked(self):
        def build(seed):
            server = Server(cores=3, seed=seed)
            server.add_workload(xmem("big", 20.0, cores=1))
            return server

        result = run_repeated(build, epochs=3, warmup=1, seeds=(1, 2))
        assert result.mem_total_bw.mean > 0
        assert len(result.mem_total_bw.values) == 2
