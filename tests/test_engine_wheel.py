"""Bucket-queue vs heapq equivalence property tests.

The calendar-wheel scheduler in ``repro.sim.engine`` must pop events in
exactly the order a single ``(time, seq)`` heap would — the paper
reproduction's bit-identity rule depends on it.  These tests run randomized
schedule/spawn/cancel programs through the real :class:`Simulator` and a
deliberately naive heap-based reference, and assert the execution traces
match event for event.
"""

from __future__ import annotations

import heapq
import itertools
import random

from repro.sim import engine
from repro.sim.engine import Simulator


class HeapReference:
    """Minimal heap scheduler with the engine's exact ordering contract."""

    def __init__(self) -> None:
        self.now = 0.0
        self._seq = itertools.count()
        self._queue: list[list] = []

    def schedule(self, when: float, action) -> list:
        entry = [when, next(self._seq), action]
        heapq.heappush(self._queue, entry)
        return entry

    def spawn(self, body) -> list:
        return self.schedule(self.now, body)

    def run_until(self, end_time: float, trace: list) -> None:
        queue = self._queue
        while queue and queue[0][0] <= end_time:
            when, seq, action = heapq.heappop(queue)
            if action is None:
                continue
            self.now = when
            if hasattr(action, "send"):  # generator process
                trace.append(("resume", when, seq))
                try:
                    delay = next(action)
                except StopIteration:
                    continue
                heapq.heappush(queue, [when + delay, next(self._seq), action])
            else:
                trace.append(("call", when, seq))
                action(self)
        if self.now < end_time:
            self.now = end_time


def _make_program(rng: random.Random):
    """Build one randomized schedule as (kind, *params) op tuples.

    Delays deliberately straddle the wheel grain, the bucket boundary, the
    full wheel span (to exercise the far heap), and zero (same-cycle
    scheduling), plus irrational-ish floats to probe boundary rounding.
    """
    span = engine.WHEEL_SLOTS * engine.WHEEL_GRAIN
    delay_pool = [
        0.0,
        0.5,
        1.0,
        engine.WHEEL_GRAIN - 0.25,
        engine.WHEEL_GRAIN,
        engine.WHEEL_GRAIN * 1.5,
        engine.WHEEL_GRAIN * 7 + 1 / 3,
        span - 1.0,
        span,
        span * 2.5,
    ]
    ops = []
    for _ in range(rng.randrange(4, 12)):
        kind = rng.random()
        if kind < 0.45:
            # A self-rescheduling process: n resumes with chosen delays.
            delays = [rng.choice(delay_pool) for _ in range(rng.randrange(1, 8))]
            ops.append(("proc", delays))
        elif kind < 0.85:
            ops.append(("callback", rng.choice(delay_pool)))
        else:
            ops.append(("cancel_next", rng.choice(delay_pool)))
    windows = sorted(
        rng.uniform(0, span * 3) for _ in range(rng.randrange(1, 4))
    )
    return ops, windows


def _run_real(ops, windows):
    sim = Simulator()
    trace: list = []
    for n, (kind, arg) in enumerate(ops):
        if kind == "proc":
            sim.spawn(f"p{n}", _traced_body(sim, trace, arg))
        elif kind == "callback":
            sim.schedule(arg, _Traced(trace))
        else:  # schedule then immediately cancel
            sim.schedule(arg, _Traced(trace)).cancel()
    for end in windows:
        sim.run_until(end)
    return trace, sim.now


def _traced_body(sim, trace, delays):
    def body():
        for d in delays:
            yield d
    gen = body()
    # Wrap so resumes are observable: record (time) at each resume via a
    # shim generator that reads the owning simulator's clock.
    def shim():
        it = gen
        while True:
            trace.append(("resume-tick", sim.now))
            try:
                d = next(it)
            except StopIteration:
                return
            yield d
    return shim()


class _Traced:
    """Callback recording its fire time; comparable across schedulers."""

    def __init__(self, trace):
        self.trace = trace

    def __call__(self, sim) -> None:
        self.trace.append(("call-tick", sim.now))


def _run_reference(ops, windows):
    ref = HeapReference()
    trace: list = []
    for n, (kind, arg) in enumerate(ops):
        if kind == "proc":
            def make(delays):
                def body():
                    for d in delays:
                        yield d
                gen = body()

                def shim():
                    it = gen
                    while True:
                        trace.append(("resume-tick", ref.now))
                        try:
                            d = next(it)
                        except StopIteration:
                            return
                        yield d
                return shim()

            ref.spawn(make(arg))
        elif kind == "callback":
            ref.schedule(arg, _Traced(trace))
        else:
            entry = ref.schedule(arg, _Traced(trace))
            entry[2] = None  # cancel
    for end in windows:
        ref.run_until(end, [])  # trace captured via closures instead
    return trace, ref.now


def test_pop_order_matches_heap_reference_randomized():
    for trial in range(120):
        rng = random.Random(0xA4 + trial)
        ops, windows = _make_program(rng)
        real_trace, real_now = _run_real(ops, windows)
        ref_trace, ref_now = _run_reference(ops, windows)
        assert real_trace == ref_trace, (
            f"trial {trial}: wheel trace diverged from heap reference\n"
            f"ops={ops}\nwindows={windows}\n"
            f"wheel={real_trace[:20]}\nheap={ref_trace[:20]}"
        )
        assert real_now == ref_now


def test_far_heap_migration_preserves_order():
    """Events far beyond the wheel span migrate back in sorted order."""
    span = engine.WHEEL_SLOTS * engine.WHEEL_GRAIN
    sim = Simulator()
    fired = []
    # Schedule far-future callbacks out of order, interleaved with near ones.
    for k, offset in enumerate([span * 2 + 5, 3.0, span * 2 + 5, span + 1,
                                0.0, span * 3, span * 2 + 4.5]):
        sim.schedule(offset, lambda s, k=k, t=offset: fired.append((t, k)))
    sim.run_until(span * 4)
    assert fired == sorted(fired)


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for k in range(32):
        sim.schedule(10.0, lambda s, k=k: fired.append(k))
    sim.run_until(10.0)
    assert fired == list(range(32))


def test_schedule_at_now_during_action_fires_in_same_run():
    sim = Simulator()
    fired = []

    def outer(s):
        fired.append("outer")
        s.schedule(s.now, lambda s2: fired.append("inner"))

    sim.schedule(5.0, outer)
    sim.run_until(5.0)
    assert fired == ["outer", "inner"]


def test_cancel_within_current_bucket_is_skipped():
    sim = Simulator()
    fired = []
    victim = sim.schedule(2.0, lambda s: fired.append("victim"))

    def killer(s):
        fired.append("killer")
        victim.cancel()

    sim.schedule(1.0, killer)
    sim.run_until(10.0)
    assert fired == ["killer"]


def test_run_until_rejects_reentrancy():
    import pytest

    sim = Simulator()

    def naughty(s):
        s.run_until(100.0)

    sim.schedule(1.0, naughty)
    with pytest.raises(RuntimeError, match="reentrant"):
        sim.run_until(10.0)
