"""Tests for time-series extraction and CSV export."""

import math

import pytest

from repro.experiments.harness import Server
from repro.telemetry import trace
from repro.workloads.xmem import xmem


@pytest.fixture(scope="module")
def samples():
    server = Server(cores=3)
    server.add_workload(xmem("a", 1.0, cores=1))
    server.add_workload(xmem("b", 2.0, cores=1))
    result = server.run(epochs=5, warmup=1)
    return result.samples


def test_series_length_matches_epochs(samples):
    values = trace.series(samples, "a", "ipc")
    assert len(values) == 5
    assert all(v >= 0 for v in values)


def test_series_unknown_metric(samples):
    with pytest.raises(ValueError):
        trace.series(samples, "a", "clock_speed")


def test_series_absent_stream_is_nan(samples):
    # Absent != idle: a missing stream must not read as a true 0.0.
    values = trace.series(samples, "ghost", "ipc")
    assert len(values) == 5
    assert all(math.isnan(v) for v in values)


def test_series_mixed_presence_gaps_only_absent_epochs(samples):
    # A stream present in every epoch has no NaN gaps…
    present = trace.series(samples, "a", "ipc")
    assert not any(math.isnan(v) for v in present)
    # …and absence is per-epoch: drop the stream from one sample and only
    # that epoch gaps.
    from dataclasses import replace

    patched = list(samples)
    streams = {k: v for k, v in patched[2].streams.items() if k != "a"}
    patched[2] = replace(patched[2], streams=streams)
    values = trace.series(patched, "a", "ipc")
    assert math.isnan(values[2])
    assert not any(math.isnan(v) for i, v in enumerate(values) if i != 2)


def test_all_registered_metrics_extract(samples):
    for metric in trace.METRICS:
        values = trace.series(samples, "a", metric)
        assert len(values) == 5


def test_to_csv_shape(samples):
    text = trace.to_csv(samples, metrics=("ipc", "llc_hit_rate"))
    lines = text.strip().split("\n")
    header = lines[0].split(",")
    assert header[:3] == ["epoch", "time", "stream"]
    assert "ipc" in header and "llc_hit_rate" in header
    # 5 epochs x 2 streams rows
    assert len(lines) == 1 + 5 * 2


def test_to_csv_rejects_unknown_metric(samples):
    with pytest.raises(ValueError):
        trace.to_csv(samples, metrics=("bogus",))


def test_write_csv(tmp_path, samples):
    path = tmp_path / "trace.csv"
    trace.write_csv(samples, str(path))
    content = path.read_text()
    assert content.startswith("epoch,time,stream")
    assert ",a," in content or "\na," in content
