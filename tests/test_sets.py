"""Unit tests for WaySet invariants and the slotted hot-path records.

The fast-path inlining in :mod:`repro.cache.hierarchy` and
:mod:`repro.cache.llc` manipulates ``WaySet.slots``/``WaySet.index``
directly, so these invariants are what that code relies on.
"""

import pytest

from repro.cache.line import LlcLine, MlcLine
from repro.cache.sets import WaySet
from repro.sim.engine import Simulator
from repro.telemetry.counters import COUNTER_FIELDS, StreamCounters


def _line(addr, way=0):
    return LlcLine(addr=addr, stream="s", way=way)


# -- WaySet ----------------------------------------------------------------


def test_install_lookup_remove_round_trip():
    ws = WaySet(4)
    line = _line(0x10)
    ws.install(line, 2)
    assert line.way == 2
    assert ws.slots[2] is line
    assert ws.lookup(0x10) is line
    ws.remove(line)
    assert ws.slots[2] is None
    assert ws.lookup(0x10) is None
    assert list(ws.occupants()) == []


def test_install_into_occupied_way_raises():
    ws = WaySet(2)
    ws.install(_line(0x10), 1)
    with pytest.raises(ValueError):
        ws.install(_line(0x20), 1)


def test_remove_nonresident_line_raises():
    ws = WaySet(2)
    ws.install(_line(0x10), 0)
    stranger = _line(0x20, way=0)  # claims way 0 but was never installed
    with pytest.raises(ValueError):
        ws.remove(stranger)


def test_index_tracks_slots_exactly():
    ws = WaySet(8)
    lines = [_line(0x100 + i) for i in range(5)]
    for i, line in enumerate(lines):
        ws.install(line, i)
    assert set(ws.index) == {line.addr for line in lines}
    assert list(ws.occupants()) == lines
    ws.remove(lines[2])
    assert 0x102 not in ws.index
    assert sum(1 for _ in ws.occupants()) == 4
    # Remaining lines still resident where they claim to be.
    for line in ws.occupants():
        assert ws.slots[line.way] is line
        assert ws.index[line.addr] is line


def test_reinstall_after_remove():
    ws = WaySet(2)
    line = _line(0x10)
    ws.install(line, 0)
    ws.remove(line)
    ws.install(line, 1)
    assert line.way == 1
    assert ws.lookup(0x10) is line


# -- closed __slots__ records ----------------------------------------------


@pytest.mark.parametrize(
    "instance",
    [
        MlcLine(addr=1, stream="s"),
        LlcLine(addr=1, stream="s", way=0),
        WaySet(2),
        Simulator().schedule(0.0, lambda sim: None),  # Event
    ],
    ids=["MlcLine", "LlcLine", "WaySet", "Event"],
)
def test_slotted_classes_reject_new_attributes(instance):
    with pytest.raises(AttributeError):
        instance.bogus_attribute = 1


def test_llc_line_inclusive_follows_holders():
    line = LlcLine(addr=1, stream="s", way=0)
    assert not line.inclusive
    line.holders.add(3)
    assert line.inclusive


# -- StreamCounters snapshot/delta -----------------------------------------


def test_snapshot_delta_round_trip():
    counters = StreamCounters()
    counters.llc_hits = 7
    counters.dma_writes = 3
    snap = counters.snapshot()
    assert snap is not counters
    assert snap == counters
    counters.llc_hits += 5
    counters.mem_reads += 2
    assert snap.llc_hits == 7  # snapshot is an independent copy
    diff = counters.delta(snap)
    assert diff.llc_hits == 5
    assert diff.mem_reads == 2
    assert diff.dma_writes == 0
    # Every field participates: snapshot + delta reconstructs the current
    # values exactly.
    for name in COUNTER_FIELDS:
        assert getattr(snap, name) + getattr(diff, name) == getattr(
            counters, name
        )


def test_counters_are_slotted():
    counters = StreamCounters()
    with pytest.raises(AttributeError):
        counters.bogus_counter = 1
