"""Representative-interval sampling tests (ISSUE 7 tentpole, part B).

The contract: a sampled long-horizon run simulates a fraction of the
epochs, synthesizes the rest from cluster representatives, and the
extrapolated aggregates of the *primary* streams (the HPW and the
steady LPWs) land within the error budget of an exact run.  The bypass
antagonist (xmem3 under A4) is deliberately excluded from the error
assertions — its occupancy trajectory only evolves during detailed
epochs, which is the documented limitation of sampling under control
feedback (see docs/performance.md).

Also here: error bounds on the sampled Fig. 11 and Fig. 15a runners
(satellite 3), clustering unit tests, report-consistency invariants,
and the CSV/trace surfaces of a sampled run.
"""

from __future__ import annotations

import csv

import pytest

from repro import obsv
from repro.experiments.figures import fig11, fig15
from repro.experiments.scenarios import build_server, microbenchmark_workloads
from repro.obsv import KIND_SAMPLE
from repro.sim.sampling import (
    SIGNATURE_METRICS,
    SampledRun,
    SamplingPlan,
    _OnlineClusters,
    epoch_signature,
)

EPOCHS = 60
WARMUP = 5
#: Budget for the report's own error estimate; the true-error assertions
#: below are tighter (2%) but scoped to the primary streams.
PLAN = SamplingPlan(error_budget=0.05)
PRIMARY_STREAMS = ("dpdk-t", "fio", "xmem1", "xmem2")
METRICS = ("ipc", "llc_hit_rate", "throughput")


def _build(seed=0xA4):
    return build_server(microbenchmark_workloads(), scheme="a4", seed=seed)


@pytest.fixture(scope="module")
def runs():
    """One exact + one sampled run of the §7.1 microbenchmark mix.

    Module-scoped: these are the expensive runs every aggregate-level
    assertion shares.  ``build_server`` never touches the run cache, so
    sharing across tests is safe."""
    exact = _build().run(epochs=EPOCHS, warmup=WARMUP)
    sampled = _build().run(epochs=EPOCHS, warmup=WARMUP, sampling=PLAN)
    return exact, sampled


# -- plan validation --------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"error_budget": 0.0},
        {"error_budget": 1.0},
        {"error_budget": -0.1},
        {"warm_epochs": 0},
        {"max_skip": 0},
        {"stability_window": 1},
        {"tolerance": 0.0},
    ],
)
def test_plan_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        SamplingPlan(**kwargs)


def test_plan_defaults_are_valid():
    plan = SamplingPlan()
    assert 0.0 < plan.error_budget < 1.0
    assert plan.max_skip >= 1


# -- the core accuracy contract ---------------------------------------------


def test_sampled_run_actually_skips(runs):
    _, sampled = runs
    report = sampled.sampling
    assert report is not None
    assert report.total_epochs == EPOCHS
    assert report.detailed_epochs + report.skipped_epochs == EPOCHS
    assert report.skipped_epochs > 0
    assert report.speedup_estimate >= 2.0
    assert len(sampled.samples) == EPOCHS


def test_primary_stream_error_within_two_percent(runs):
    exact, sampled = runs
    for name in PRIMARY_STREAMS:
        exact_agg = exact.aggregate(name)
        sampled_agg = sampled.aggregate(name)
        for metric in METRICS:
            reference = getattr(exact_agg, metric)
            estimate = getattr(sampled_agg, metric)
            err = abs(estimate - reference) / max(abs(reference), 1e-9)
            assert err <= 0.02, (name, metric, reference, estimate)


def test_report_consistency(runs):
    _, sampled = runs
    report = sampled.sampling
    assert len(report.skipped_indices) == report.skipped_epochs
    # Skips never eat the warmup prefix and always leave the functional
    # warmup epochs they promised.
    assert all(i >= WARMUP for i in report.skipped_indices)
    assert report.warm_epochs <= report.detailed_epochs
    assert report.clusters >= 1
    assert report.within_budget() == (
        report.max_rel_err() <= report.plan.error_budget
    )
    assert report.within_budget()
    # Every primary stream carries an estimate for every tracked metric.
    for name in PRIMARY_STREAMS:
        assert set(report.estimates[name]) == set(SIGNATURE_METRICS)
    for metrics in report.estimates.values():
        for estimate in metrics.values():
            assert estimate.stderr >= 0.0
            assert estimate.rel_err >= 0.0


def test_synthesized_epochs_stay_contiguous(runs):
    _, sampled = runs
    assert [s.index for s in sampled.samples] == list(range(EPOCHS))
    times = [s.time for s in sampled.samples]
    assert times == sorted(times)
    assert sampled.server.epochs_completed == EPOCHS


def test_exact_run_has_no_sampling_report(runs):
    exact, _ = runs
    assert exact.sampling is None


def test_summary_and_csv_surfaces(runs, tmp_path):
    _, sampled = runs
    summary = sampled.summary()
    assert "sampled run:" in summary
    assert "structural speedup" in summary

    path = tmp_path / "series.csv"
    sampled.export_csv(str(path))
    companion = tmp_path / "series.csv.sampling.csv"
    assert companion.exists()
    with companion.open() as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["stream", "metric", "mean", "stderr", "rel_err"]
    streams = {row[0] for row in rows[1:]}
    assert set(PRIMARY_STREAMS) <= streams


# -- figure-level error bounds (satellite 3) --------------------------------


def test_fig11_sampled_error_bound():
    """Fig. 11, single A4 cell: sampled HPW/LPW columns within 2%."""
    exact = fig11.run(
        epochs=50, warmup=5, schemes=("a4",), packet_sizes=(1024,)
    )
    sampled = fig11.run(
        epochs=50,
        warmup=5,
        schemes=("a4",),
        packet_sizes=(1024,),
        sampling=PLAN,
    )
    exact_row, sampled_row = exact.rows[0], sampled.rows[0]
    for column in ("x1_ipc", "x1_hit", "x2_ipc", "x2_hit"):
        reference, estimate = exact_row[column], sampled_row[column]
        err = abs(estimate - reference) / max(abs(reference), 1e-9)
        assert err <= 0.02, (column, reference, estimate)


def test_fig15a_sampled_error_bound():
    """Fig. 15a, one T1 point: sampled HPW relative perf within 2%."""
    exact = fig15.run_partitioning(
        epochs=24, warmup=6, t1_values=(0.10,), t5_values=()
    )
    sampled = fig15.run_partitioning(
        epochs=24, warmup=6, t1_values=(0.10,), t5_values=(), sampling=PLAN
    )
    reference = exact.rows[0]["hpw_rel_perf"]
    estimate = sampled.rows[0]["hpw_rel_perf"]
    assert abs(estimate - reference) / abs(reference) <= 0.02


# -- clustering unit tests --------------------------------------------------


class _FakeStream:
    def __init__(self, ipc=0.1):
        self.ipc = ipc
        self.llc_hit_rate = 0.9
        self.mlc_miss_rate = 0.2
        self.io_throughput_lines_per_cycle = 0.3


class _FakeSample:
    def __init__(self, ipc=0.1):
        self.streams = {"a": _FakeStream(ipc)}


def test_online_clusters_stabilize_on_repeats():
    plan = SamplingPlan(stability_window=3)
    clusters = _OnlineClusters(plan)
    signature = ("phase", (0.1, 0.9, 0.2, 0.3))
    for _ in range(3):
        clusters.observe(signature, _FakeSample())
    stable = clusters.stable_cluster()
    assert stable is not None
    assert stable.count == 3
    assert stable.representative is not None
    assert len(clusters.clusters) == 1


def test_phase_change_splits_clusters():
    plan = SamplingPlan(stability_window=2)
    clusters = _OnlineClusters(plan)
    vector = (0.1, 0.9, 0.2, 0.3)
    clusters.observe(("recover", vector), _FakeSample())
    clusters.observe(("recover", vector), _FakeSample())
    assert clusters.stable_cluster() is not None
    # Same rates, different FSM phase: never the same interval class.
    clusters.observe(("degrade", vector), _FakeSample())
    assert len(clusters.clusters) == 2
    assert clusters.stable_cluster() is None


def test_divergent_signature_breaks_stability():
    plan = SamplingPlan(stability_window=2, tolerance=0.05)
    clusters = _OnlineClusters(plan)
    clusters.observe(("p", (1.0, 1.0)), _FakeSample())
    clusters.observe(("p", (1.0, 1.0)), _FakeSample())
    assert clusters.stable_cluster() is not None
    clusters.observe(("p", (2.0, 2.0)), _FakeSample())
    assert clusters.stable_cluster() is None
    clusters.reset_stability()
    assert clusters.stable_cluster() is None
    assert clusters.recent == []


def test_epoch_signature_layout(runs):
    exact, _ = runs
    sample = exact.samples[-1]
    phase, vector = epoch_signature(sample, exact.server)
    assert isinstance(phase, str)
    assert len(vector) == len(sample.streams) * len(SIGNATURE_METRICS) + 1
    assert epoch_signature(sample, exact.server) == (phase, vector)


# -- observability ----------------------------------------------------------


def test_sampled_run_emits_skip_events():
    obsv.enable()
    try:
        result = _build().run(epochs=30, warmup=4, sampling=SamplingPlan())
        skips = [e for e in obsv.TRACER.events if e.kind == KIND_SAMPLE]
    finally:
        obsv.disable()
    report = result.sampling
    assert report.skipped_epochs > 0
    assert skips, "sampled run must trace its skip decisions"
    assert all(e.name == "skip" for e in skips)
    assert sum(e.data["epochs"] for e in skips) == report.skipped_epochs
    for event in skips:
        assert set(event.data) == {"cluster", "epochs", "members"}
