"""Tests for the FIO storage workload model."""

import pytest

from repro import config
from repro.experiments.harness import Server
from repro.workloads.fio import FioWorkload

KB = 1024
MB = 1024 * KB


def run_fio(block_bytes=128 * KB, cores=2, epochs=5, dca=True, **kwargs):
    server = Server(cores=cores + 1)
    workload = FioWorkload(name="fio", block_bytes=block_bytes, cores=cores, **kwargs)
    server.add_workload(workload)
    if not dca:
        server.pcie.port(workload.port_id).disable_dca()
    return server, workload, server.run(epochs=epochs, warmup=1)


def test_blocks_complete_and_are_scanned():
    server, workload, result = run_fio()
    counters = server.counters.stream("fio")
    assert counters.io_requests_completed > 0
    assert counters.io_reads >= counters.io_requests_completed * workload.block_lines


def test_block_lines_scaled_from_paper_bytes():
    w = FioWorkload(block_bytes=2 * MB)
    assert w.block_lines == config.lines_for_paper_bytes(2 * MB)
    assert FioWorkload(block_bytes=4 * KB).block_lines >= 1


def test_throughput_independent_of_dca():
    # Four threads, as in the paper: enough consumer capacity that the
    # device, not the memory path, is the bottleneck either way.
    _, _, with_dca = run_fio(cores=4, dca=True)
    _, _, without = run_fio(cores=4, dca=False)
    a = with_dca.aggregate("fio").throughput
    b = without.aggregate("fio").throughput
    assert a == pytest.approx(b, rel=0.1)


def test_dca_off_doubles_memory_traffic():
    _, _, with_dca = run_fio(block_bytes=32 * KB, dca=True)
    _, _, without = run_fio(block_bytes=32 * KB, dca=False)
    assert without.mem_total_bw > 1.5 * with_dca.mem_total_bw


def test_large_blocks_leak_with_dca_on():
    _, _, result = run_fio(block_bytes=2 * MB, cores=4, epochs=5)
    agg = result.aggregate("fio")
    assert agg.dma_leaks > 0
    assert agg.dca_miss_rate > 0.4


def test_small_blocks_do_not_leak():
    _, _, result = run_fio(block_bytes=32 * KB, cores=4, epochs=5)
    agg = result.aggregate("fio")
    assert agg.dca_miss_rate < 0.05


def test_latency_recorded_per_block():
    _, _, result = run_fio()
    agg = result.aggregate("fio")
    assert agg.requests > 0 and agg.avg_latency > 0


def test_parameter_validation():
    with pytest.raises(ValueError):
        FioWorkload(block_bytes=0)
    with pytest.raises(ValueError):
        FioWorkload(io_depth=0)
    with pytest.raises(ValueError):
        FioWorkload(memory_parallelism=0.5)
