"""Tests for the MBA model and its hierarchy integration."""

import pytest

from repro.rdt.cat import ClosConfigError
from repro.rdt.mba import MemoryBandwidthAllocation, VALID_DELAYS
from repro.experiments.harness import Server
from repro.workloads.xmem import xmem


def test_default_is_unthrottled():
    mba = MemoryBandwidthAllocation()
    assert mba.delay_of(0) == 0
    assert mba.latency_factor(0) == 1.0


def test_delay_steps_enforced():
    mba = MemoryBandwidthAllocation()
    mba.set_delay(1, 50)
    assert mba.delay_of(1) == 50
    with pytest.raises(ClosConfigError):
        mba.set_delay(1, 55)
    with pytest.raises(ClosConfigError):
        mba.set_delay(99, 10)
    assert 0 in VALID_DELAYS and 90 in VALID_DELAYS


def test_latency_factor_curve():
    mba = MemoryBandwidthAllocation()
    mba.set_delay(1, 50)
    mba.set_delay(2, 90)
    assert mba.latency_factor(1) == pytest.approx(2.0)
    assert mba.latency_factor(2) == pytest.approx(10.0)
    assert mba.latency_factor(7) == 1.0  # untouched CLOS


def test_throttled_workload_slows_down():
    def run(delay):
        server = Server(cores=2)
        server.add_workload(xmem("mem", 20.0, cores=1))  # streaming
        if delay:
            server.mba.set_delay(server.clos_of("mem"), delay)
        result = server.run(epochs=4, warmup=1)
        return result.aggregate("mem").ipc

    free = run(0)
    throttled = run(90)
    assert throttled < 0.25 * free


def test_cache_hits_unaffected_by_mba():
    server = Server(cores=2)
    server.add_workload(xmem("hot", 0.25, cores=1))  # fits the MLC
    server.mba.set_delay(server.clos_of("hot"), 90)
    result = server.run(epochs=4, warmup=1)
    # MLC-resident workload: throttling memory changes nothing.
    assert result.aggregate("hot").mlc_miss_rate < 0.05
    assert result.aggregate("hot").ipc > 0.1


def test_delays_snapshot():
    mba = MemoryBandwidthAllocation(num_clos=4)
    mba.set_delay(3, 20)
    assert mba.delays() == {0: 0, 1: 0, 2: 0, 3: 20}
