"""Calibration locks: loose bands around the headline measured numbers.

These exist so that future changes which silently break the calibration
(DESIGN.md §1, docs/modeling_notes.md) fail a fast test rather than only a
five-minute benchmark.  Bands are deliberately wide — they guard the
*regime*, not the digit.
"""

import pytest

from repro.experiments.figures.base import run_setup
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload

KB = 1024
MB = 1024 * KB


@pytest.fixture(scope="module")
def dpdk_alone():
    return run_setup(
        [DpdkWorkload(name="dpdk", touch=True, cores=4, packet_bytes=1514)],
        epochs=5,
    )


def test_network_alone_is_unsaturated(dpdk_alone):
    agg = dpdk_alone.aggregate("dpdk")
    assert agg.packets_dropped == 0
    # Queueing-dominated but healthy: within ~2 packet service times.
    assert 300 < agg.avg_latency < 1500


def test_network_alone_hits_in_dca(dpdk_alone):
    agg = dpdk_alone.aggregate("dpdk")
    assert agg.dca_miss_rate < 0.02


def test_network_offered_load_utilisation(dpdk_alone):
    # ~80% of consumer capacity at DCA-hit speeds (see config docstring).
    agg = dpdk_alone.aggregate("dpdk")
    assert agg.throughput == pytest.approx(0.16, rel=0.05)


@pytest.fixture(scope="module")
def fio_large():
    return run_setup(
        [FioWorkload(name="fio", block_bytes=2 * MB, cores=4, io_depth=32)],
        epochs=5,
    )


def test_storage_saturation_band(fio_large):
    # Device-bound regime: most of the 0.11 lines/cycle array bandwidth.
    assert 0.05 < fio_large.aggregate("fio").throughput < 0.115


def test_storage_large_blocks_leak_heavily(fio_large):
    assert fio_large.aggregate("fio").dca_miss_rate > 0.8


def test_storage_small_blocks_admission_bound():
    run = run_setup(
        [FioWorkload(name="fio", block_bytes=4 * KB, cores=4, io_depth=32)],
        epochs=5,
    )
    # 1 line per ~60-cycle admission plus quantum effects.
    assert run.aggregate("fio").throughput == pytest.approx(0.0139, rel=0.25)


def test_storage_network_interference_band():
    run = run_setup(
        [
            DpdkWorkload(
                name="dpdk", touch=True, cores=4, packet_bytes=1514,
                priority=PRIORITY_HIGH,
            ),
            FioWorkload(
                name="fio", block_bytes=512 * KB, cores=4, io_depth=32,
                priority=PRIORITY_LOW,
            ),
        ],
        masks={"dpdk": (4, 5), "fio": (2, 3)},
        epochs=6,
    )
    dpdk = run.aggregate("dpdk")
    # Elevated tail, but not in the saturated 30k+ regime.
    assert dpdk.p99_latency < 20_000
    assert dpdk.throughput > 0.14
