"""Tests for the memory controller: accounting and contention latency."""

import pytest

from repro.telemetry.counters import CounterBank
from repro.uncore.memory import MemoryController


def test_traffic_attribution():
    bank = CounterBank()
    mem = MemoryController(bank)
    mem.read(0.0, 3, "a")
    mem.write(0.0, 2, "b")
    assert bank.stream("a").mem_reads == 3
    assert bank.stream("b").mem_writes == 2
    assert mem.total_reads == 3 and mem.total_writes == 2


def test_idle_latency_is_base():
    mem = MemoryController(CounterBank(), base_latency=200.0)
    assert mem.access_latency() == 200.0


def test_latency_grows_under_load():
    bank = CounterBank()
    mem = MemoryController(
        bank, bandwidth_lines_per_cycle=1.0, base_latency=200.0, window_cycles=100.0
    )
    # Saturate several windows.
    for t in range(0, 2000, 10):
        mem.read(float(t), 10, "hog")
    assert mem.utilization > 0.5
    assert mem.access_latency() > 200.0


def test_utilization_decays_when_idle():
    bank = CounterBank()
    mem = MemoryController(
        bank, bandwidth_lines_per_cycle=1.0, base_latency=200.0, window_cycles=100.0
    )
    for t in range(0, 1000, 10):
        mem.read(float(t), 10, "hog")
    high = mem.utilization
    # Long quiet period, then one transfer to roll the window.
    mem.read(10_000.0, 1, "hog")
    mem.read(20_000.0, 1, "hog")
    assert mem.utilization < high


def test_bandwidth_must_be_positive():
    with pytest.raises(ValueError):
        MemoryController(CounterBank(), bandwidth_lines_per_cycle=0.0)


def test_latency_bounded_even_when_saturated():
    bank = CounterBank()
    mem = MemoryController(
        bank, bandwidth_lines_per_cycle=0.1, base_latency=200.0, window_cycles=50.0
    )
    for t in range(0, 5000, 5):
        mem.write(float(t), 50, "hog")
    # rho is clamped, so latency stays finite and sane.
    assert mem.access_latency() < 200.0 * 10
