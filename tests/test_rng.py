"""Tests for deterministic RNG streams."""

from repro.sim.rng import DeterministicRng


def test_same_name_same_stream():
    a = DeterministicRng(1).stream("nic")
    b = DeterministicRng(1).stream("nic")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_differ():
    rng = DeterministicRng(1)
    a = rng.stream("nic")
    b = rng.stream("ssd")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = DeterministicRng(1).stream("nic")
    b = DeterministicRng(2).stream("nic")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_adding_streams_does_not_perturb_existing():
    rng1 = DeterministicRng(7)
    first = rng1.stream("a")
    values_before = [first.random() for _ in range(3)]

    rng2 = DeterministicRng(7)
    rng2.stream("zzz")  # an extra actor
    second = rng2.stream("a")
    assert values_before == [second.random() for _ in range(3)]
