"""Tests for the extended directory (snoop filter)."""

import pytest

from repro.cache.directory import SnoopFilter


def test_track_and_entry():
    sf = SnoopFilter(sets=2, ways=4)
    assert sf.track(0, core=1, inclusive=False) is None
    entry = sf.entry(0)
    assert entry is not None and entry.holders == {1}


def test_track_second_holder_merges():
    sf = SnoopFilter(sets=2, ways=4)
    sf.track(0, core=1, inclusive=False)
    sf.track(0, core=2, inclusive=True)
    entry = sf.entry(0)
    assert entry.holders == {1, 2}
    assert entry.inclusive


def test_overflow_evicts_lru_non_inclusive():
    sf = SnoopFilter(sets=1, ways=2)
    sf.track(0, core=0, inclusive=False)
    sf.track(1, core=0, inclusive=False)
    sf.entry(0)  # does not touch LRU; victim should still be addr 0
    victim = sf.track(2, core=0, inclusive=False)
    assert victim is not None and victim.addr == 0
    assert sf.back_invalidations == 1


def test_inclusive_entries_protected_from_eviction():
    sf = SnoopFilter(sets=1, ways=2)
    sf.track(0, core=0, inclusive=True)
    sf.track(1, core=0, inclusive=False)
    victim = sf.track(2, core=0, inclusive=False)
    assert victim.addr == 1  # the non-inclusive one


def test_all_inclusive_overflow_is_structural_error():
    sf = SnoopFilter(sets=1, ways=2)
    sf.track(0, core=0, inclusive=True)
    sf.track(1, core=0, inclusive=True)
    with pytest.raises(RuntimeError):
        sf.track(2, core=0, inclusive=False)


def test_drop_holder_removes_entry_when_empty():
    sf = SnoopFilter(sets=1, ways=4)
    sf.track(0, core=0, inclusive=False)
    sf.track(0, core=1, inclusive=False)
    sf.drop_holder(0, 0)
    assert sf.entry(0).holders == {1}
    sf.drop_holder(0, 1)
    assert sf.entry(0) is None


def test_set_inclusive_flag():
    sf = SnoopFilter(sets=1, ways=4)
    sf.track(0, core=0, inclusive=True)
    sf.set_inclusive(0, False)
    assert not sf.entry(0).inclusive
    sf.set_inclusive(99, True)  # unknown addr: silently ignored


def test_remove():
    sf = SnoopFilter(sets=1, ways=4)
    sf.track(0, core=0, inclusive=False)
    removed = sf.remove(0)
    assert removed is not None and sf.entry(0) is None


def test_geometry_guard():
    with pytest.raises(ValueError):
        SnoopFilter(sets=4, ways=1)  # fewer ways than shared (inclusive) ways


def test_occupancy():
    sf = SnoopFilter(sets=2, ways=4)
    sf.track(0, core=0, inclusive=False)
    sf.track(2, core=0, inclusive=False)  # same set (2 % 2 == 0)
    assert sf.occupancy(0) == 2
    assert sf.occupancy(1) == 0
