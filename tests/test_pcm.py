"""Tests for the PCM-style epoch sampler."""

import pytest

from repro.telemetry.counters import CounterBank
from repro.telemetry.pcm import (
    KIND_CPU,
    KIND_NETWORK,
    KIND_STORAGE,
    PcmSampler,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    StreamInfo,
)


def make_sampler(epoch=1000.0):
    bank = CounterBank()
    return bank, PcmSampler(bank, epoch_cycles=epoch)


def test_stream_info_validation():
    with pytest.raises(ValueError):
        StreamInfo("x", kind="bogus")
    with pytest.raises(ValueError):
        StreamInfo("x", priority="MEDIUM")
    assert StreamInfo("x", kind=KIND_NETWORK).is_io
    assert not StreamInfo("x", kind=KIND_CPU).is_io


def test_sample_delta_semantics():
    bank, pcm = make_sampler()
    pcm.register(StreamInfo("a"))
    bank.stream("a").llc_hits = 10
    first = pcm.sample(1000.0)
    assert first.streams["a"].counters.llc_hits == 10
    bank.stream("a").llc_hits = 13
    second = pcm.sample(2000.0)
    assert second.streams["a"].counters.llc_hits == 3


def test_ipc_per_core():
    bank, pcm = make_sampler(epoch=1000.0)
    pcm.register(StreamInfo("a", cores=(0, 1)))
    bank.stream("a").instructions = 4000
    sample = pcm.sample(1000.0)
    assert sample.streams["a"].ipc == pytest.approx(2.0)


def test_memory_bandwidth_aggregation():
    bank, pcm = make_sampler(epoch=1000.0)
    pcm.register(StreamInfo("a"))
    pcm.register(StreamInfo("b"))
    bank.stream("a").mem_reads = 500
    bank.stream("b").mem_writes = 250
    sample = pcm.sample(1000.0)
    assert sample.mem_read_bw == pytest.approx(0.5)
    assert sample.mem_write_bw == pytest.approx(0.25)
    assert sample.mem_total_bw == pytest.approx(0.75)


def test_storage_io_share():
    bank, pcm = make_sampler()
    pcm.register(StreamInfo("net", kind=KIND_NETWORK))
    pcm.register(StreamInfo("ssd", kind=KIND_STORAGE))
    bank.stream("net").dma_writes = 60
    bank.stream("ssd").dma_writes = 40
    sample = pcm.sample(1000.0)
    assert sample.storage_io_share() == pytest.approx(0.4)
    assert sample.pcie_write_lines == 100


def test_storage_share_zero_when_idle():
    bank, pcm = make_sampler()
    pcm.register(StreamInfo("ssd", kind=KIND_STORAGE))
    sample = pcm.sample(1000.0)
    assert sample.storage_io_share() == 0.0


def test_latency_flushed_per_epoch():
    bank, pcm = make_sampler()
    pcm.register(StreamInfo("a"))
    pcm.tracker("a").record(10.0)
    first = pcm.sample(1000.0)
    assert first.streams["a"].latency.count == 1
    second = pcm.sample(2000.0)
    assert second.streams["a"].latency.count == 0


def test_history_and_indices():
    bank, pcm = make_sampler()
    pcm.register(StreamInfo("a"))
    pcm.sample(1000.0)
    pcm.sample(2000.0)
    assert [s.index for s in pcm.history] == [0, 1]


def test_io_throughput_rate():
    bank, pcm = make_sampler(epoch=1000.0)
    pcm.register(StreamInfo("a", kind=KIND_STORAGE))
    bank.stream("a").io_bytes_completed = 64 * 100
    sample = pcm.sample(1000.0)
    assert sample.streams["a"].io_throughput_lines_per_cycle == pytest.approx(0.1)


def test_priorities_exposed():
    bank, pcm = make_sampler()
    pcm.register(StreamInfo("a", priority=PRIORITY_LOW))
    sample = pcm.sample(1000.0)
    assert sample.streams["a"].info.priority == PRIORITY_LOW
    assert PRIORITY_HIGH != PRIORITY_LOW
