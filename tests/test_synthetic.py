"""Tests for the synthetic profile engine, X-Mem, and SPEC profiles."""

import pytest

from repro import config
from repro.experiments.harness import Server
from repro.workloads.spec import SPEC_PROFILES, spec_workload
from repro.workloads.synthetic import AccessProfile, SyntheticWorkload
from repro.workloads.xmem import xmem, xmem_table3


def run_single(workload, epochs=4):
    server = Server(cores=workload.num_cores + 1)
    server.add_workload(workload)
    return server.run(epochs=epochs, warmup=1)


def test_profile_validation():
    with pytest.raises(ValueError):
        AccessProfile(working_set_lines=0)
    with pytest.raises(ValueError):
        AccessProfile(working_set_lines=10, pattern="diagonal")
    with pytest.raises(ValueError):
        AccessProfile(working_set_lines=10, write_fraction=1.5)
    with pytest.raises(ValueError):
        AccessProfile(working_set_lines=10, repeats=0)
    with pytest.raises(ValueError):
        AccessProfile(working_set_lines=10, batch_accesses=0)
    with pytest.raises(ValueError):
        # Coalesced runs are homogeneous reads; stores need the exact loop.
        AccessProfile(
            working_set_lines=10, batch_accesses=8, write_fraction=0.5
        )


def test_small_ws_reaches_high_hit_rate():
    profile = AccessProfile(working_set_lines=32, repeats=1)
    result = run_single(SyntheticWorkload("tiny", profile, "HPW", cores=1))
    agg = result.aggregate("tiny")
    assert agg.mlc_miss_rate < 0.05  # fits the MLC after warm-up
    assert agg.ipc > 0


def test_streaming_ws_misses_everywhere():
    profile = AccessProfile(working_set_lines=8000, pattern="seq")
    result = run_single(SyntheticWorkload("stream", profile, "LPW", cores=1))
    agg = result.aggregate("stream")
    assert agg.mlc_miss_rate > 0.95
    assert agg.llc_miss_rate > 0.95


def test_repeats_raise_mlc_hit_rate():
    base = AccessProfile(working_set_lines=4000, repeats=1)
    repeated = AccessProfile(working_set_lines=4000, repeats=4)
    r1 = run_single(SyntheticWorkload("r1", base, "HPW"))
    r4 = run_single(SyntheticWorkload("r4", repeated, "HPW"))
    assert r4.aggregate("r4").mlc_miss_rate < r1.aggregate("r1").mlc_miss_rate


def test_write_fraction_produces_dirty_lines():
    profile = AccessProfile(working_set_lines=6000, write_fraction=1.0)
    workload = SyntheticWorkload("writer", profile, "LPW")
    server = Server(cores=2)
    server.add_workload(workload)
    server.run(epochs=4, warmup=1)
    dirty = [
        line
        for line in server.hierarchy.llc.resident()
        if line.stream == "writer" and line.dirty
    ]
    assert dirty, "stores must produce dirty victim-cache lines"


def test_multicore_splits_working_set():
    workload = xmem("xm", 4.0, cores=2)
    server = Server(cores=4)
    server.add_workload(workload)
    assert workload.cores == (0, 1)
    server.run(epochs=3, warmup=1)
    # Both cores contribute accesses.
    counters = server.counters.stream("xm")
    assert counters.mlc_hits + counters.mlc_misses > 0


def test_xmem_capacity_scaling_preserves_paper_constraints():
    ws = config.lines_for_paper_bytes(4 * 1024 * 1024)
    two_mlcs = 2 * config.MLC_LINES
    two_ways = 2 * config.LLC_WAY_LINES
    assert two_mlcs < ws < two_ways


def test_xmem_table3_matches_paper():
    instances = xmem_table3()
    assert [w.name for w in instances] == ["xmem1", "xmem2", "xmem3"]
    assert instances[0].priority == "HPW"
    assert instances[1].profile.write_fraction == 1.0
    assert instances[2].profile.pattern == "rand"
    assert instances[2].profile.working_set_lines > instances[0].profile.working_set_lines


def test_xmem_rejects_unknown_op():
    with pytest.raises(ValueError):
        xmem(op="modify")


def test_stride_pattern_covers_working_set():
    from repro.workloads.synthetic import PATTERN_STRIDE

    profile = AccessProfile(
        working_set_lines=64, pattern=PATTERN_STRIDE, stride_lines=4
    )
    workload = SyntheticWorkload("strider", profile, "HPW", cores=1)
    server = Server(cores=2)
    server.add_workload(workload)
    server.run(epochs=3, warmup=1)
    counters = server.counters.stream("strider")
    assert counters.mlc_hits + counters.mlc_misses > 0


def test_batch_accesses_matches_scalar_access_totals():
    """The coalescing knob must visit the same lines and charge the same
    instruction count as the per-access loop; only event granularity (and
    therefore how far an epoch budget stretches) may differ."""
    scalar = AccessProfile(working_set_lines=256, repeats=2)
    batched = AccessProfile(working_set_lines=256, repeats=2, batch_accesses=16)

    def totals(profile, name):
        server = Server(cores=2, seed=7)
        server.add_workload(SyntheticWorkload(name, profile, "HPW", cores=1))
        server.run(epochs=3, warmup=1)
        counters = server.counters.stream(name)
        accesses = counters.mlc_hits + counters.mlc_misses
        events = server.sim.events_executed
        return counters.instructions / max(accesses, 1), accesses, events

    ipa_s, accesses_s, events_s = totals(scalar, "s")
    ipa_b, accesses_b, events_b = totals(batched, "b")
    assert ipa_b == ipa_s  # instructions-per-access preserved exactly
    assert accesses_b > 0 and accesses_s > 0
    assert events_b < events_s  # that's the point of the knob


def test_stride_validation():
    with pytest.raises(ValueError):
        AccessProfile(working_set_lines=10, pattern="stride", stride_lines=0)


def test_run_result_export_csv(tmp_path):
    server = Server(cores=2)
    server.add_workload(xmem("a", 1.0, cores=1))
    result = server.run(epochs=4, warmup=1)
    path = tmp_path / "run.csv"
    result.export_csv(str(path))
    content = path.read_text()
    assert content.startswith("epoch,time,stream")
    assert "avg_latency" in content


def test_spec_profiles_cover_table2():
    for name in ("x264", "parest", "xalancbmk", "bwaves", "lbm", "mcf"):
        assert name in SPEC_PROFILES


def test_spec_antagonists_have_streaming_signature():
    llc_lines = config.LLC_SETS * config.LLC_WAYS
    for name in ("bwaves", "lbm"):
        assert SPEC_PROFILES[name].working_set_lines > llc_lines


def test_spec_unknown_benchmark():
    with pytest.raises(KeyError):
        spec_workload("gcc_o3")


def test_spec_workload_is_detected_antagonist_material():
    result = run_single(spec_workload("bwaves", "LPW"), epochs=4)
    agg = result.aggregate("bwaves")
    assert agg.mlc_miss_rate > 0.9 and agg.llc_miss_rate > 0.9
