"""Tests for the CAT model: masks, contiguity, associations."""

import pytest

from repro.rdt.cat import CacheAllocation, ClosConfigError, contiguous_mask


def test_default_masks_are_full():
    cat = CacheAllocation(ways=11)
    assert cat.mask(0) == tuple(range(11))
    assert cat.ways_for_core(3) == tuple(range(11))


def test_set_mask_and_lookup():
    cat = CacheAllocation()
    cat.set_mask(1, range(5, 7))
    assert cat.mask(1) == (5, 6)


def test_contiguity_enforced():
    cat = CacheAllocation()
    with pytest.raises(ClosConfigError):
        cat.set_mask(1, (0, 2))


def test_empty_mask_rejected():
    cat = CacheAllocation()
    with pytest.raises(ClosConfigError):
        cat.set_mask(1, ())


def test_out_of_range_mask_rejected():
    cat = CacheAllocation(ways=11)
    with pytest.raises(ClosConfigError):
        cat.set_mask(1, (10, 11))


def test_invalid_clos_rejected():
    cat = CacheAllocation(num_clos=4)
    with pytest.raises(ClosConfigError):
        cat.set_mask(4, (0,))
    with pytest.raises(ClosConfigError):
        cat.associate(0, -1)


def test_association_changes_core_ways():
    cat = CacheAllocation()
    cat.set_mask(2, range(3, 5))
    cat.associate(7, 2)
    assert cat.clos_of(7) == 2
    assert cat.ways_for_core(7) == (3, 4)
    assert cat.clos_of(8) == 0  # unassociated cores use CLOS 0


def test_duplicate_ways_normalised():
    cat = CacheAllocation()
    cat.set_mask(1, (4, 4, 5))
    assert cat.mask(1) == (4, 5)


def test_contiguous_mask_helper():
    assert contiguous_mask(2, 4) == (2, 3, 4)
    with pytest.raises(ClosConfigError):
        contiguous_mask(5, 4)


def test_associations_snapshot():
    cat = CacheAllocation()
    cat.associate(0, 1)
    cat.associate(1, 2)
    assert cat.associations() == {0: 1, 1: 2}
