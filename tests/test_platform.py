"""PlatformSpec: validation, preset identity, the deprecation shim, and
two specs coexisting in one process."""

import importlib
import warnings

import pytest

from repro.platform import (
    DEFAULT_PLATFORM,
    ICELAKE_SP,
    MAX_CBM_BITS,
    SKYLAKE_SP,
    PlatformSpec,
    custom,
    get_platform,
)


# -- validation -------------------------------------------------------------


def test_overlapping_dca_and_inclusive_ways_rejected():
    with pytest.raises(ValueError, match="overlap"):
        PlatformSpec(
            name="bad", llc_ways=5, dca_ways=(0, 1, 2), inclusive_ways=(2, 3, 4)
        )


def test_zero_standard_ways_rejected():
    with pytest.raises(ValueError, match="standard ways"):
        PlatformSpec(
            name="bad", llc_ways=4, dca_ways=(0, 1), inclusive_ways=(2, 3)
        )


def test_llc_ways_capped_by_cbm_width():
    too_many = MAX_CBM_BITS + 1
    with pytest.raises(ValueError, match="CBM"):
        PlatformSpec(
            name="bad",
            llc_ways=too_many,
            inclusive_ways=(too_many - 2, too_many - 1),
        )


def test_dca_ways_must_be_leftmost_and_contiguous():
    with pytest.raises(ValueError, match="way 0"):
        PlatformSpec(name="bad", dca_ways=(1, 2))
    with pytest.raises(ValueError, match="contiguous"):
        PlatformSpec(name="bad", llc_ways=11, dca_ways=(0, 2))


def test_inclusive_ways_must_be_rightmost():
    with pytest.raises(ValueError, match="last way"):
        PlatformSpec(name="bad", llc_ways=11, inclusive_ways=(8, 9))


def test_extended_directory_must_cover_inclusive_ways():
    with pytest.raises(ValueError, match="extended_dir_ways"):
        PlatformSpec(name="bad", extended_dir_ways=1)


# -- capacity helpers: parity with the old free functions -------------------


def _shim():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro import config
    return config


def test_lines_for_paper_bytes_matches_old_free_function():
    config = _shim()
    for paper_bytes in (1, 4096, 4 * 1024 * 1024, 25 * 1024 * 1024):
        assert SKYLAKE_SP.lines_for_paper_bytes(
            paper_bytes
        ) == config.lines_for_paper_bytes(paper_bytes)
    assert SKYLAKE_SP.lines_for_paper_bytes(
        1, minimum=7
    ) == config.lines_for_paper_bytes(1, minimum=7)


def test_packet_lines_matches_old_free_function():
    config = _shim()
    for packet_bytes in (1, 64, 65, 256, 1024, 1514):
        assert SKYLAKE_SP.packet_lines(packet_bytes) == config.packet_lines(
            packet_bytes
        )


def test_capacity_scale_bitwise_equal_to_old_constant():
    assert SKYLAKE_SP.capacity_scale == _shim().CAPACITY_SCALE


# -- deprecation shim -------------------------------------------------------


def test_shim_warns_once_and_mirrors_the_skylake_preset():
    import repro.config as config_module

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        config = importlib.reload(config_module)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "repro.platform" in str(deprecations[0].message)

    preset = PlatformSpec.presets()["skylake-sp"]
    expected = {
        "LINE_BYTES": preset.line_bytes,
        "LLC_WAYS": preset.llc_ways,
        "LLC_SETS": preset.llc_sets,
        "LLC_WAY_LINES": preset.llc_way_lines,
        "DCA_WAYS": preset.dca_ways,
        "INCLUSIVE_WAYS": preset.inclusive_ways,
        "STANDARD_WAYS": preset.standard_ways,
        "EXTENDED_DIR_WAYS": preset.extended_dir_ways,
        "MLC_SETS": preset.mlc_sets,
        "MLC_WAYS": preset.mlc_ways,
        "MLC_LINES": preset.mlc_lines,
        "PAPER_LLC_WAY_BYTES": preset.paper_llc_way_bytes,
        "CAPACITY_SCALE": preset.capacity_scale,
        "MLC_HIT_CYCLES": preset.mlc_hit_cycles,
        "LLC_HIT_CYCLES": preset.llc_hit_cycles,
        "MEMORY_CYCLES": preset.memory_cycles,
        "EPOCH_CYCLES": preset.epoch_cycles,
        "WARMUP_EPOCHS": preset.warmup_epochs,
        "MEMORY_BANDWIDTH_LINES_PER_CYCLE":
            preset.memory_bandwidth_lines_per_cycle,
        "NIC_LINE_RATE_LINES_PER_CYCLE": preset.nic_line_rate_lines_per_cycle,
        "SSD_BANDWIDTH_LINES_PER_CYCLE": preset.ssd_bandwidth_lines_per_cycle,
        "SSD_COMMAND_OVERHEAD_CYCLES": preset.ssd_command_overhead_cycles,
    }
    for name, value in expected.items():
        assert getattr(config, name) == value, name


# -- registry / derivation --------------------------------------------------


def test_presets_registry_and_default():
    presets = PlatformSpec.presets()
    assert set(presets) == {"skylake-sp", "cascadelake-sp", "icelake-sp"}
    assert presets["skylake-sp"] is SKYLAKE_SP
    assert DEFAULT_PLATFORM is SKYLAKE_SP
    assert get_platform(None) is SKYLAKE_SP
    assert get_platform(ICELAKE_SP) is ICELAKE_SP


def test_get_platform_dca_variant_suffix():
    spec = get_platform("skylake-sp+dca3")
    assert spec.dca_ways == (0, 1, 2)
    assert spec.name == "skylake-sp+dca3"
    assert spec.standard_ways == tuple(range(3, 9))
    with pytest.raises(KeyError):
        get_platform("no-such-part")
    with pytest.raises(ValueError):
        get_platform("skylake-sp+dca10")  # would swallow the inclusive ways


def test_custom_builder_and_fingerprint_identity():
    spec = custom(llc_sets=512)
    assert spec.name == "skylake-sp+custom"
    assert spec.llc_way_lines == 512
    assert spec.fingerprint()["sha"] != SKYLAKE_SP.fingerprint()["sha"]
    assert SKYLAKE_SP.fingerprint()["sha"] == SKYLAKE_SP.fingerprint()["sha"]
    assert "@" in spec.token


# -- two specs in one process ----------------------------------------------


def test_two_servers_with_different_specs_side_by_side():
    from repro.experiments.harness import Server
    from repro.workloads.xmem import xmem

    servers = {}
    for name in ("skylake-sp", "icelake-sp"):
        platform = get_platform(name)
        server = Server(cores=4, seed=0xA4, platform=platform)
        server.add_workload(
            xmem("xmem", 4.0, cores=2, platform=platform)
        )
        servers[name] = server

    sky, ice = servers["skylake-sp"], servers["icelake-sp"]
    # Distinct geometry everywhere, no shared module-level state.
    assert sky.cat.ways == 11 and ice.cat.ways == 12
    assert sky.hierarchy.llc.cfg.ways == 11
    assert ice.hierarchy.llc.cfg.ways == 12
    assert sky.hierarchy.sf.ways == 12 and ice.hierarchy.sf.ways == 16
    assert sky.hierarchy.mlcs[0].sets == 32
    assert ice.hierarchy.mlcs[0].sets == 40
    assert ice.hierarchy.llc.cfg.inclusive_ways == (10, 11)

    # Both run in the same process, interleaved, without contaminating
    # each other.
    runs = {name: s.run(epochs=3, warmup=1) for name, s in servers.items()}
    for name, run in runs.items():
        assert run.aggregate("xmem").ipc > 0, name
    assert sky.platform.name == "skylake-sp"
    assert ice.platform.name == "icelake-sp"
