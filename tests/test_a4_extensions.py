"""Tests for the §1 extension: network DMA-bloat trash-way treatment."""

from repro.core.a4 import A4Manager
from repro.core.policy import A4Policy
from repro.experiments.harness import Server
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.xmem import xmem


def make_server(policy):
    server = Server(cores=8)
    server.add_workload(
        DpdkWorkload(
            name="net", touch=True, cores=4, packet_bytes=1024, priority="HPW"
        )
    )
    server.add_workload(xmem("hp", 1.0, cores=1, priority="HPW"))
    manager = A4Manager(policy)
    server.set_manager(manager)
    return server, manager


def test_extension_off_by_default():
    server, manager = make_server(A4Policy())
    server.run(epochs=8, warmup=2)
    assert manager.bloat_treated == set()


def test_extension_detects_bloating_network_workload():
    server, manager = make_server(A4Policy(network_bloat_bypass=True))
    server.run(epochs=10, warmup=2)
    # DPDK-T with a ring larger than the inclusive ways bloats steadily.
    assert "net" in manager.bloat_treated
    mask = manager.ways_of("net")
    assert mask == (manager.policy.trash_way,)
    assert any("DMA bloat" in e for e in manager.events)


def test_treated_workload_keeps_consuming_from_dca():
    """The CAT mask redirects only MLC evictions; packets still arrive in
    the DCA ways and latency stays low."""
    server, manager = make_server(A4Policy(network_bloat_bypass=True))
    result = server.run(epochs=12, warmup=4)
    net = result.aggregate("net")
    assert "net" in manager.bloat_treated
    assert net.dca_miss_rate < 0.2
    # Far below the tens-of-thousands-of-cycles saturation regime.
    assert net.avg_latency < 5000


def test_bloat_lines_confined_to_trash_way():
    server, manager = make_server(A4Policy(network_bloat_bypass=True))
    server.run(epochs=12, warmup=4)
    trash = manager.policy.trash_way
    inclusive = set(server.hierarchy.llc.cfg.inclusive_ways)
    dca = set(server.hierarchy.llc.cfg.dca_ways)
    for line in server.hierarchy.llc.resident():
        if line.stream == "net" and line.consumed:
            # consumed (bloated or migrated) lines: trash way or inclusive
            assert line.way == trash or line.way in inclusive
        elif line.stream == "net":
            assert line.way in dca | inclusive | {trash}
