"""Tests for the process-pool sweep runner and the bench harness smoke.

The equivalence tests force ``parallel=True`` with an explicit
``max_workers`` so the pool path is exercised even on single-CPU hosts
(where callers would normally fall back to serial).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.harness import Server
from repro.experiments.parallel import (
    METRIC_FIELDS,
    FigureTask,
    ParallelExecutionError,
    SeedTask,
    resolve_workers,
    run_tasks,
    seed_metrics,
)
from repro.experiments.sweep import average_figure, run_repeated
from repro.workloads.xmem import xmem

REPO_ROOT = Path(__file__).resolve().parent.parent


def build(seed):
    """Module-level so SeedTask pickles into pool workers."""
    server = Server(cores=3, seed=seed)
    server.add_workload(xmem("a", 2.0, cores=1, pattern="rand"))
    return server


def _fail_on_negative(value):
    if value < 0:
        raise ValueError(f"negative input {value}")
    return value * 2


# -- run_tasks engine ------------------------------------------------------


def test_run_tasks_preserves_order_serial_and_parallel():
    tasks = list(range(6))
    serial = run_tasks(_fail_on_negative, tasks, parallel=False)
    pooled = run_tasks(_fail_on_negative, tasks, parallel=True, max_workers=2)
    assert serial == pooled == [0, 2, 4, 6, 8, 10]


def test_run_tasks_empty():
    assert run_tasks(_fail_on_negative, []) == []


@pytest.mark.parametrize("parallel", [False, True])
def test_run_tasks_captures_every_failure(parallel):
    with pytest.raises(ParallelExecutionError) as excinfo:
        run_tasks(
            _fail_on_negative,
            [1, -1, 2, -2],
            parallel=parallel,
            max_workers=2,
        )
    failures = excinfo.value.failures
    assert [f.index for f in failures] == [1, 3]
    assert "negative input -1" in failures[0].error
    assert "Traceback" in failures[0].traceback
    assert "ValueError" in str(excinfo.value)


def test_warm_pool_reused_across_batches():
    """Consecutive same-width batches share one executor (warm pool)."""
    from repro.experiments import parallel as par

    run_tasks(_fail_on_negative, [1, 2, 3, 4], parallel=True, max_workers=2)
    first_pool = par._pool
    assert first_pool is not None
    run_tasks(_fail_on_negative, [5, 6, 7, 8], parallel=True, max_workers=2)
    assert par._pool is first_pool
    # A different width tears down and replaces the executor.
    run_tasks(_fail_on_negative, [1, 2, 3], parallel=True, max_workers=3)
    assert par._pool is not first_pool
    par.shutdown_pool()
    assert par._pool is None


def test_failures_carry_category():
    from repro.experiments.errors import WorkloadConfigError

    def boom(task):
        if task == "config":
            raise WorkloadConfigError("bad workload")
        raise OSError("disk on fire")

    with pytest.raises(ParallelExecutionError) as excinfo:
        run_tasks(boom, ["config", "other"], parallel=False)
    categories = {f.task: f.category for f in excinfo.value.failures}
    assert categories == {"config": "config", "other": "runtime"}
    assert excinfo.value.categories() == {"config": 1, "runtime": 1}
    assert "[config]" in str(excinfo.value)


def test_resolve_workers():
    assert resolve_workers(10, max_workers=4) == 4
    assert resolve_workers(2, max_workers=8) == 2
    assert resolve_workers(5, max_workers=0) == 1
    assert resolve_workers(0, max_workers=None) == 1


# -- equivalence: serial vs parallel ---------------------------------------


@pytest.mark.parametrize("cached", [False, True])
def test_run_repeated_parallel_matches_serial(cached, monkeypatch):
    if not cached:
        # Force real simulation on both paths (no cache replay).
        from repro.experiments import runcache

        monkeypatch.setenv(runcache.ENV_CACHE_DISABLE, "1")
        runcache.set_cache(None)
    seeds = (1, 2, 3)
    serial = run_repeated(build, epochs=3, warmup=1, seeds=seeds)
    pooled = run_repeated(
        build, epochs=3, warmup=1, seeds=seeds, parallel=True, max_workers=2
    )
    assert serial == pooled  # bit-identical MultiSeedResult
    assert pooled.seeds == seeds
    assert pooled.total_events > 0
    for stream, metrics in serial.streams.items():
        assert set(metrics) == set(METRIC_FIELDS)
        for name in METRIC_FIELDS:
            assert pooled.metric(stream, name).values == metrics[name].values


def test_average_figure_parallel_matches_serial():
    from repro.experiments.figures import fig8

    serial = average_figure(fig8.run_fig8b, seeds=(1, 2), epochs=4)
    pooled = average_figure(
        fig8.run_fig8b, seeds=(1, 2), parallel=True, max_workers=2, epochs=4
    )
    assert pooled.rows == serial.rows
    assert pooled.title == serial.title
    assert pooled.columns == serial.columns
    assert pooled.notes == serial.notes


def test_seed_metrics_summary_shape():
    mem_total_bw, streams, events = seed_metrics(SeedTask(build, 3, 1, 7))
    assert mem_total_bw >= 0
    assert set(streams) == {"a"}
    assert set(streams["a"]) == set(METRIC_FIELDS)
    assert events > 0  # simulated-event count for bench accounting


def test_seed_metrics_memoized():
    """A repeated identical seed is served from the run cache."""
    from repro.experiments import runcache

    cache = runcache.get_cache()
    task = SeedTask(build, 3, 1, 11)
    first = seed_metrics(task)
    hits_before = cache.stats.hits
    second = seed_metrics(task)
    assert second == first
    assert cache.stats.hits == hits_before + 1


def test_task_descriptors_pickle():
    import pickle

    seed_task = SeedTask(build, epochs=3, warmup=1, seed=7)
    fig_task = FigureTask(build, seed=7, kwargs=(("epochs", 4),))
    assert pickle.loads(pickle.dumps(seed_task)) == seed_task
    assert pickle.loads(pickle.dumps(fig_task)) == fig_task


# -- bench harness smoke ---------------------------------------------------


def test_bench_quick_emits_valid_record(tmp_path):
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "bench.py"),
            "--quick",
            "--no-compare",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    record = json.loads(out.read_text())
    assert record["schema"] == 1
    assert record["quick"] is True
    assert record["results"], "no benchmarks ran"
    for name, entry in record["results"].items():
        assert entry["wall_s"] > 0, name
        assert entry["events_per_s"] > 0, name


# -- dispatch hardening ----------------------------------------------------


def _sleep_in_worker(task):
    """Sleeps only inside a pool worker, so the in-parent retry is instant."""
    import multiprocessing
    import time

    if multiprocessing.parent_process() is not None:
        time.sleep(30)
    return task * 10


def test_timed_out_chunk_is_retried_serially_in_parent():
    from repro.experiments import parallel as par

    par.dispatch_stats.reset()
    results = run_tasks(
        _sleep_in_worker,
        [1, 2],
        parallel=True,
        max_workers=2,
        task_timeout=1.0,
    )
    assert results == [10, 20]  # every stranded task recovered, in order
    assert par.dispatch_stats.timeouts >= 1
    assert par.dispatch_stats.retried_tasks == 2
    assert par._pool is None  # the wedged pool was abandoned
    assert "retried" in par.dispatch_stats.summary()


def test_zero_timeout_disables_dispatch_deadline(monkeypatch):
    from repro.experiments import parallel as par

    monkeypatch.setenv(par.ENV_TASK_TIMEOUT, "0")
    assert par._resolve_timeout(None) is None
    monkeypatch.setenv(par.ENV_TASK_TIMEOUT, "2.5")
    assert par._resolve_timeout(None) == 2.5
    assert par._resolve_timeout(7.0) == 7.0  # explicit arg wins
    monkeypatch.delenv(par.ENV_TASK_TIMEOUT)
    assert par._resolve_timeout(None) == par.DEFAULT_TASK_TIMEOUT


def test_failures_carry_config_digest():
    from repro.experiments.parallel import task_digest

    with pytest.raises(ParallelExecutionError) as excinfo:
        run_tasks(_fail_on_negative, [3, -7], parallel=False)
    failure = excinfo.value.failures[0]
    assert failure.digest == task_digest(-7)
    assert len(failure.digest) == 12
    assert f"(config {failure.digest})" in str(excinfo.value)


def test_task_digest_matches_runcache_fingerprint():
    from repro.experiments.parallel import task_digest
    from repro.experiments.runcache import fingerprint

    task = SeedTask(build=build, seed=7, epochs=4, warmup=1)
    assert task_digest(task) == fingerprint(task)[:12]

    class Undigestable:
        __slots__ = ()

        def __repr__(self):
            raise RuntimeError("no canonical form")

    # Unfingerprintable payloads degrade to a marker instead of raising.
    assert task_digest(Undigestable()) == "unfingerprintable"


# -- broken-pool recycling / dispatch backoff -------------------------------


def _die_if_pooled(parent_pid):
    """SIGKILL the process when run in a pool worker; harmless in-parent.

    Lets one batch both break the executor (worker side) and complete
    (parent-side serial fallback)."""
    import os
    import signal

    if os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return parent_pid * 2


def test_broken_pool_is_recycled_and_batch_recovers(monkeypatch):
    import os

    from repro.experiments import parallel as par
    from repro.service.retry import RetryPolicy

    monkeypatch.setattr(
        par,
        "DISPATCH_RETRY_POLICY",
        RetryPolicy(base_delay=0.01, max_delay=0.01),
    )
    par.dispatch_stats.reset()
    parent = os.getpid()
    # Two tasks so the effective worker count stays > 1 (a one-task batch
    # would short-circuit to the serial path and never touch the pool).
    results = run_tasks(
        _die_if_pooled, [parent, parent], parallel=True, max_workers=2
    )
    assert results == [parent * 2] * 2  # serial fallback completed the batch
    assert par.dispatch_stats.broken_pools == 1
    assert par.dispatch_stats.pool_recycles == 1
    assert par.dispatch_stats.backoff_seconds > 0  # backoff was applied
    assert par._pool is not None  # a warm replacement pool is up
    assert not par._pool._broken
    assert "1 pool recycles" in par.dispatch_stats.summary()
    # The recycled pool is immediately usable.
    assert run_tasks(
        _fail_on_negative, [3, 4], parallel=True, max_workers=2
    ) == [6, 8]


def test_recycle_if_broken_is_a_noop_on_healthy_pools():
    from repro.experiments import parallel as par

    par.dispatch_stats.reset()
    par.shutdown_pool()
    assert par.recycle_if_broken() is False  # no pool at all
    pool = par.get_pool(2)
    assert par.recycle_if_broken() is False  # healthy pool untouched
    assert par._pool is pool
    assert par.dispatch_stats.pool_recycles == 0


def test_dispatch_backoff_is_deterministic_and_counted():
    from repro.experiments import parallel as par

    delay = par.DISPATCH_RETRY_POLICY.delay(1, token="batch")
    assert delay == par.DISPATCH_RETRY_POLICY.delay(1, token="batch")
    assert 0.15 <= delay <= 0.25  # base 0.2s within the 25% jitter band
    before = par.dispatch_stats.backoff_seconds
    par._backoff(0, token="x")  # zero failures: no delay, nothing logged
    assert par.dispatch_stats.backoff_seconds == before
