"""Tests for the packet generator."""

import pytest

from repro import config
from repro.devices.packetgen import PacketGenConfig, PacketGenerator
from repro.sim.rng import DeterministicRng


def test_packet_lines_rounding():
    assert PacketGenConfig(packet_bytes=64).packet_lines == 1
    assert PacketGenConfig(packet_bytes=65).packet_lines == 2
    assert PacketGenConfig(packet_bytes=1514).packet_lines == 24


def test_mean_gap_matches_line_rate():
    cfg = PacketGenConfig(packet_bytes=1024, line_rate_lines_per_cycle=0.1)
    assert cfg.mean_gap_cycles == pytest.approx(cfg.packet_lines / 0.1)


def test_zero_jitter_is_periodic():
    cfg = PacketGenConfig(packet_bytes=512, jitter=0.0)
    gen = PacketGenerator(cfg, DeterministicRng(1).stream("g"))
    gaps = [gen.next_gap() for _ in range(10)]
    assert len(set(gaps)) == 1


def test_jitter_stays_within_band():
    cfg = PacketGenConfig(packet_bytes=512, jitter=0.25)
    gen = PacketGenerator(cfg, DeterministicRng(1).stream("g"))
    mean = cfg.mean_gap_cycles
    for _ in range(200):
        gap = gen.next_gap()
        assert 0.75 * mean - 1e-9 <= gap <= 1.25 * mean + 1e-9


def test_achieved_rate_close_to_configured():
    cfg = PacketGenConfig(packet_bytes=1024, line_rate_lines_per_cycle=0.05)
    gen = PacketGenerator(cfg, DeterministicRng(2).stream("g"))
    n = 2000
    total = sum(gen.next_gap() for _ in range(n))
    achieved = n * cfg.packet_lines / total
    assert achieved == pytest.approx(0.05, rel=0.05)


def test_config_validation():
    with pytest.raises(ValueError):
        PacketGenConfig(packet_bytes=0)
    with pytest.raises(ValueError):
        PacketGenConfig(line_rate_lines_per_cycle=0.0)
    with pytest.raises(ValueError):
        PacketGenConfig(jitter=1.0)


def test_default_rate_is_config_value():
    cfg = PacketGenConfig()
    assert cfg.line_rate_lines_per_cycle == config.NIC_LINE_RATE_LINES_PER_CYCLE
