"""Tests for the fault-injection subsystem and the controller hardening
it exercises: plans, the injector, wrapped control surfaces, sample
sanitization, apply retries, the oscillation watchdog, and a quick chaos
run end to end."""

from __future__ import annotations

import pytest

from repro.core.a4 import A4Manager, PHASE_DEGRADED
from repro.core.guard import (
    OscillationWatchdog,
    SampleSanitizer,
    stream_reading_valid,
)
from repro.core.policy import A4Policy
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultyCacheAllocation,
    check_masks,
)
from repro.rdt.cat import CacheAllocation, ClosConfigError, TransientClosError
from repro.sim.rng import DeterministicRng
from repro.uncore.pcie import TransientPortError

from tests.test_a4_fsm import FakeServer, FakeWorkload, make_sample


# -- plans ------------------------------------------------------------------


def test_plan_defaults_are_inert():
    plan = FaultPlan()
    assert not plan.enabled
    assert not plan.telemetry_faults
    assert not plan.device_faults
    assert plan.describe() == "inert"


def test_scaled_plan_multiplies_rates_and_clamps():
    plan = FaultPlan.scaled(0.5)
    assert plan.sample_corrupt_rate == pytest.approx(0.125)
    assert plan.enabled
    assert FaultPlan.scaled(0.0).enabled is False
    clamped = FaultPlan.scaled(100.0)
    assert clamped.cat_fail_rate == 1.0


def test_plan_validation_rejects_bad_rates():
    with pytest.raises(ValueError):
        FaultPlan(cat_fail_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan.scaled(-1)
    with pytest.raises(ValueError):
        FaultPlan(nic_storm_factor=0.5)


def test_from_env(monkeypatch):
    from repro.faults.plan import ENV_FAULT_INTENSITY

    monkeypatch.delenv(ENV_FAULT_INTENSITY, raising=False)
    assert FaultPlan.from_env() is None
    monkeypatch.setenv(ENV_FAULT_INTENSITY, "0")
    assert FaultPlan.from_env() is None
    monkeypatch.setenv(ENV_FAULT_INTENSITY, "0.5")
    plan = FaultPlan.from_env()
    assert plan is not None and plan.enabled


# -- telemetry injection ----------------------------------------------------


def _injector(**rates) -> FaultInjector:
    return FaultInjector(FaultPlan(**rates), DeterministicRng(7))


def test_filter_sample_clean_plan_returns_same_object():
    injector = _injector()
    sample = make_sample(0, {"a": 0.9})
    assert injector.filter_sample(sample) is sample


def test_filter_sample_drop_removes_stream_but_not_truth():
    injector = _injector(sample_drop_rate=1.0)
    sample = make_sample(0, {"a": 0.9, "b": 0.5})
    view = injector.filter_sample(sample)
    assert view.streams == {}
    assert set(sample.streams) == {"a", "b"}  # the true sample is untouched
    assert injector.counters.samples_dropped == 2


def test_filter_sample_stale_redelivers_previous_reading():
    injector = _injector(sample_stale_rate=1.0)
    first = make_sample(0, {"a": 0.9})
    injector.filter_sample(first)  # primes the held readings
    second = make_sample(1, {"a": 0.2})
    view = injector.filter_sample(second)
    assert view.streams["a"] is first.streams["a"]
    assert injector.counters.samples_stale == 1


def test_filter_sample_corruption_garbles_view_only():
    injector = _injector(sample_corrupt_rate=1.0)
    sample = make_sample(0, {"a": 0.9})
    view = injector.filter_sample(sample)
    assert view is not sample
    assert view.streams["a"].counters is not sample.streams["a"].counters
    assert injector.counters.samples_corrupted == 1


def test_zero_cycle_epoch_fault():
    injector = _injector(zero_cycle_rate=1.0)
    sample = make_sample(0, {"a": 0.9})
    view = injector.filter_sample(sample)
    assert view.epoch_cycles == 0.0
    assert sample.epoch_cycles > 0


def test_injection_is_deterministic_per_seed():
    plans = FaultPlan.scaled(1.0)
    a = FaultInjector(plans, DeterministicRng(11))
    b = FaultInjector(plans, DeterministicRng(11))
    for i in range(20):
        sample = make_sample(i, {"x": 0.9, "y": 0.4})
        va = a.filter_sample(sample)
        vb = b.filter_sample(sample)
        assert set(va.streams) == set(vb.streams)
    assert a.counters == b.counters


# -- CAT / DCA wrappers -----------------------------------------------------


def test_faulty_cat_transient_failure_keeps_committed_mask():
    cat = CacheAllocation()
    injector = _injector(cat_fail_rate=1.0)
    faulty = FaultyCacheAllocation(cat, injector)
    before = cat.mask(1)
    with pytest.raises(TransientClosError):
        faulty.set_mask(1, range(0, 4))
    assert cat.mask(1) == before
    assert check_masks(faulty) is None


def test_faulty_cat_invalid_mask_raises_plain_error():
    faulty = FaultyCacheAllocation(CacheAllocation(), _injector(cat_fail_rate=1.0))
    # A caller bug must surface as ClosConfigError (not the transient
    # subtype) and must never count as an injected fault.
    with pytest.raises(ClosConfigError) as excinfo:
        faulty.set_mask(1, [])
    assert not isinstance(excinfo.value, TransientClosError)
    assert faulty.injector.counters.cat_failures == 0


def test_faulty_cat_delayed_commit_matures_after_n_epochs():
    cat = CacheAllocation()
    injector = _injector(cat_delay_rate=1.0)
    faulty = FaultyCacheAllocation(cat, injector)
    before = cat.mask(1)
    faulty.set_mask(1, range(0, 4))
    assert cat.mask(1) == before  # accepted but not yet committed
    injector.advance_epoch()
    assert cat.mask(1) == before
    injector.advance_epoch()  # cat_delay_epochs = 2
    assert cat.mask(1) == tuple(range(0, 4))
    assert injector.counters.cat_delays == 1


def test_newer_write_supersedes_older_delayed_write():
    cat = CacheAllocation()
    injector = _injector(cat_delay_rate=1.0)
    faulty = FaultyCacheAllocation(cat, injector)
    faulty.set_mask(1, range(0, 4))
    faulty.set_mask(1, range(2, 6))  # supersedes the in-flight write
    injector.advance_epoch()
    injector.advance_epoch()
    assert cat.mask(1) == tuple(range(2, 6))


def test_dca_apply_failure_is_transient():
    from repro.telemetry.counters import CounterBank
    from repro.uncore.pcie import PcieComplex

    pcie = PcieComplex(CounterBank())
    pcie.add_port(0, "nic")
    injector = _injector(dca_fail_rate=1.0)
    from repro.faults import FaultyPcieView

    view = FaultyPcieView(pcie, injector)
    with pytest.raises(TransientPortError):
        view.port(0).disable_dca()
    assert pcie.port(0).dca_enabled  # committed state unchanged


def test_check_masks_flags_hand_broken_state():
    cat = CacheAllocation()
    assert check_masks(cat) is None
    cat._masks[2] = (0, 3)  # non-contiguous, bypassing validation
    assert "non-contiguous" in check_masks(cat)


# -- sanitizer --------------------------------------------------------------


def test_stream_reading_valid_rejects_garbage():
    good = make_sample(0, {"a": 0.9}).streams["a"]
    assert stream_reading_valid(good)
    bad = make_sample(0, {"a": 0.9}, {"a": dict(llc_hits=-5)}).streams["a"]
    assert not stream_reading_valid(bad)


def test_sanitizer_clean_sample_same_object():
    sanitizer = SampleSanitizer()
    sample = make_sample(0, {"a": 0.9})
    assert sanitizer.sanitize(sample, ["a"]) is sample
    assert sanitizer.stats() == {"held_over": 0, "zeroed": 0, "skipped_epochs": 0}


def test_sanitizer_holds_over_last_good_reading():
    sanitizer = SampleSanitizer()
    good = make_sample(0, {"a": 0.9})
    sanitizer.sanitize(good, ["a"])
    bad = make_sample(1, {"a": 0.9}, {"a": dict(llc_hits=-1)})
    view = sanitizer.sanitize(bad, ["a"])
    assert view.streams["a"] is good.streams["a"]
    assert sanitizer.held_over == 1


def test_sanitizer_neutralizes_invalid_reading_without_history():
    sanitizer = SampleSanitizer()
    bad = make_sample(0, {"a": 0.9}, {"a": dict(llc_misses=-1)})
    view = sanitizer.sanitize(bad, ["a"])
    assert view.streams["a"].counters.llc_hits == 0
    assert view.streams["a"].counters.llc_misses == 0
    assert sanitizer.zeroed == 1


def test_sanitizer_rejects_zero_cycle_epoch():
    sanitizer = SampleSanitizer()
    sample = make_sample(0, {"a": 0.9})
    object.__setattr__(sample, "epoch_cycles", 0.0)
    assert sanitizer.sanitize(sample, ["a"]) is None
    assert sanitizer.skipped_epochs == 1


def test_sanitizer_prune_and_forget():
    sanitizer = SampleSanitizer()
    sanitizer.sanitize(make_sample(0, {"a": 0.9, "b": 0.5}), ["a", "b"])
    sanitizer.prune(["a"])
    assert set(sanitizer._last_good) == {"a"}
    sanitizer.forget("a")
    assert not sanitizer._last_good


# -- watchdog ---------------------------------------------------------------


def test_watchdog_trips_at_threshold_within_window():
    dog = OscillationWatchdog(window=10, threshold=3, cooldown=4)
    dog.note_epoch()
    assert not dog.note_reallocation()
    dog.note_epoch()
    assert not dog.note_reallocation()
    dog.note_epoch()
    assert dog.note_reallocation()  # third inside the window: trips
    assert dog.degraded
    assert dog.degraded_entries == 1


def test_watchdog_window_slides():
    dog = OscillationWatchdog(window=3, threshold=2, cooldown=2)
    dog.note_epoch()
    dog.note_reallocation()
    for _ in range(5):  # the old reallocation ages out of the window
        dog.note_epoch()
    assert not dog.note_reallocation()
    assert not dog.degraded


def test_watchdog_cooldown_expires_and_resets():
    dog = OscillationWatchdog(window=10, threshold=2, cooldown=3)
    dog.note_reallocation()
    assert dog.note_reallocation()
    assert dog.note_reallocation()  # while degraded: still reports tripped
    expired = [dog.note_epoch() for _ in range(3)]
    assert expired == [False, False, True]
    assert not dog.degraded
    assert dog.degraded_epochs == 3
    dog.note_reallocation()
    dog.reset()
    assert not dog.degraded and not dog._history


# -- manager retry contract -------------------------------------------------


class FlakyCat:
    """CacheAllocation wrapper failing the first ``fail_times`` writes."""

    def __init__(self, fail_times: int):
        self.inner = CacheAllocation()
        self.fail_times = fail_times
        self.attempts = 0

    def set_mask(self, clos, ways):
        self.attempts += 1
        if self.attempts <= self.fail_times:
            raise TransientClosError("flaky")
        self.inner.set_mask(clos, ways)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _manager_with_flaky_cat(fail_times: int, **policy_kwargs) -> A4Manager:
    manager = A4Manager(A4Policy(**policy_kwargs))
    server = FakeServer([FakeWorkload("hp")])
    server.cat = FlakyCat(fail_times)
    manager.attach(server)
    return manager


def test_set_ways_retries_transient_failures_in_place():
    manager = _manager_with_flaky_cat(fail_times=2, apply_retry_limit=3)
    manager.server.cat.attempts = 0
    manager.server.cat.fail_times = 2
    retries_before = manager.apply_retries
    assert manager.set_ways("hp", 0, 3)
    assert manager.apply_retries == retries_before + 2
    assert manager.ways_of("hp") == tuple(range(0, 4))


def test_set_ways_exhaustion_parks_and_retry_pending_recovers():
    manager = _manager_with_flaky_cat(fail_times=10**6, apply_retry_limit=1)
    cat = manager.server.cat
    cat.attempts = 0
    cat.fail_times = 10**6
    before = manager.ways_of("hp")
    assert not manager.set_ways("hp", 0, 3)
    assert manager.pending_applies == 1
    assert manager.apply_deferred >= 1
    assert manager.ways_of("hp") == before  # committed state untouched
    cat.fail_times = cat.attempts  # heal the surface
    manager.retry_pending()
    assert manager.pending_applies == 0
    assert manager.apply_recovered == 1
    assert manager.ways_of("hp") == tuple(range(0, 4))


def test_retry_pending_backs_off_exponentially():
    manager = _manager_with_flaky_cat(fail_times=10**6, apply_retry_limit=0)
    cat = manager.server.cat
    cat.fail_times = 10**6
    manager.set_ways("hp", 0, 3)
    entry = manager._pending_ways["hp"]
    assert entry[2:] == [1, 1]
    manager.retry_pending()  # fails again: interval doubles
    assert manager._pending_ways["hp"][2:] == [2, 2]
    manager.retry_pending()  # waiting, no attempt
    assert manager._pending_ways["hp"][2] == 1


# -- degraded mode end to end ----------------------------------------------


def _drive_to_degraded(max_epochs: int = 60) -> A4Manager:
    policy = A4Policy(
        stable_interval=1,
        watchdog_window=50,
        watchdog_reallocs=2,
        watchdog_cooldown=3,
    )
    manager = A4Manager(policy)
    manager.attach(
        FakeServer([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    )
    for i in range(max_epochs):
        if manager.phase == PHASE_DEGRADED:
            return manager
        # Alternate a healthy and a collapsed hit rate: every stable phase
        # immediately sees a >T1 fluctuation, the flip-flop signature.
        hit = 0.9 if manager.phase == "baseline" else 0.2
        manager.on_epoch(make_sample(i, {"hp": hit, "lp": 0.5}))
    raise AssertionError("watchdog never tripped")


def test_watchdog_pins_static_layout_and_recovers():
    manager = _drive_to_degraded()
    assert manager.watchdog.degraded
    assert manager.robustness_stats()["degraded_entries"] == 1
    assert "watchdog" in "".join(manager.events)
    # The pinned layout is the initial partitions.
    assert manager.layout.lp_left == manager.layout.initial_lp_left
    pinned = manager.ways_of("hp")
    reallocs = manager.reallocations
    # During cooldown nothing reacts, no matter how wild the samples are.
    i = 100
    while manager.phase == PHASE_DEGRADED:
        manager.on_epoch(make_sample(i, {"hp": 0.01, "lp": 0.99}))
        assert manager.ways_of("hp") == pinned
        i += 1
        assert i < 110
    assert manager.phase == "baseline"
    assert manager.reallocations == reallocs + 1  # the recovery realloc
    assert not manager.watchdog.degraded


def test_workload_change_clears_degraded_mode():
    manager = _drive_to_degraded()
    manager.server.workloads.append(FakeWorkload("new", priority="LPW"))
    manager.server._clos["new"] = 9
    manager.on_workload_change()
    assert not manager.watchdog.degraded
    assert manager.phase == "baseline"


# -- chaos harness ----------------------------------------------------------


def test_quick_chaos_run_holds_invariants():
    from repro.faults.chaos import run_chaos

    result = run_chaos(0.75, epochs=12, seed=3)
    assert result.ok
    assert sum(result.faults.values()) > 0
    assert result.mean_ipc > 0


def test_chaos_run_is_deterministic():
    from repro.faults.chaos import run_chaos

    a = run_chaos(0.75, epochs=8, seed=5)
    b = run_chaos(0.75, epochs=8, seed=5)
    assert a.faults == b.faults
    assert a.mean_ipc == b.mean_ipc
    assert a.robustness == b.robustness


def test_fault_free_chaos_run_builds_no_fault_layer():
    from repro.experiments.scenarios import build_server, chaos_workloads

    server = build_server(chaos_workloads(), scheme="a4", seed=1)
    assert server.faults is None
    assert isinstance(server.cat, CacheAllocation)
