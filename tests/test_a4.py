"""Tests for the A4 controller's state machine and treatments."""

import pytest

from repro.core.a4 import (
    A4Manager,
    PHASE_BASELINE,
    PHASE_EXPANDING,
    PHASE_REVERTING,
    PHASE_STABLE,
)
from repro.core.policy import A4Policy
from repro.experiments.harness import Server
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload
from repro.workloads.spec import spec_workload
from repro.workloads.xmem import xmem

MB = 1024 * 1024


def make_server(workloads, policy=None):
    server = Server(cores=sum(w.num_cores for w in workloads) + 2)
    for w in workloads:
        server.add_workload(w)
    manager = A4Manager(policy or A4Policy())
    server.set_manager(manager)
    return server, manager


def test_attach_applies_initial_partitions_with_io_hpw():
    server, manager = make_server(
        [
            DpdkWorkload(name="net", cores=2, priority="HPW"),
            xmem("cpuhp", 2.0, cores=1, priority="HPW"),
            xmem("lp", 2.0, cores=1, priority="LPW"),
        ]
    )
    assert manager.phase == PHASE_BASELINE
    assert manager.ways_of("net") == tuple(range(0, 11))
    assert manager.ways_of("cpuhp") == tuple(range(2, 11))  # no DCA zone
    assert manager.ways_of("lp") == (7, 8)  # initial LP, shunning inclusive


def test_attach_without_io_uses_full_range():
    server, manager = make_server(
        [
            xmem("hp", 2.0, cores=1, priority="HPW"),
            xmem("lp", 2.0, cores=1, priority="LPW"),
        ]
    )
    assert manager.ways_of("hp") == tuple(range(0, 11))
    assert manager.ways_of("lp") == (9, 10)


def test_lp_zone_expands_when_hpws_unharmed():
    server, manager = make_server(
        [
            xmem("hp", 1.0, cores=1, priority="HPW"),
            xmem("lp", 4.0, cores=1, priority="LPW"),
        ]
    )
    server.run(epochs=14, warmup=2)
    assert manager.phase in (PHASE_STABLE, PHASE_EXPANDING, PHASE_REVERTING)
    # The tiny HPW never degrades, so LP Zone expands fully leftward.
    assert manager.layout.lp_span()[0] <= 3


def test_storage_antagonist_gets_dca_disabled_and_demoted():
    server, manager = make_server(
        [
            DpdkWorkload(name="net", cores=2, priority="HPW"),
            FioWorkload(name="fio", block_bytes=2 * MB, cores=2, priority="HPW"),
        ]
    )
    server.run(epochs=10, warmup=2)
    assert "fio" in manager.antagonists
    assert manager.antagonists["fio"].kind == "storage"
    fio = server.workload("fio")
    assert not server.pcie.port(fio.port_id).dca_enabled
    assert "fio" in manager.demoted  # HPW -> treated as LPW (§5.4)


def test_cpu_antagonist_squeezed_to_trash_way():
    server, manager = make_server(
        [
            xmem("hp", 1.0, cores=1, priority="HPW"),
            spec_workload("bwaves", "LPW"),
        ]
    )
    server.run(epochs=16, warmup=2)
    assert "bwaves" in manager.antagonists
    state = manager.antagonists["bwaves"]
    assert state.kind == "cpu"
    span = manager.ways_of("bwaves")
    assert span[-1] == manager.policy.trash_way
    assert len(span) <= 3  # squeezed well below the LP zone


def test_selective_dca_disable_flag_off_leaves_storage_alone():
    policy = A4Policy(selective_dca_disable=False, pseudo_llc_bypass=False)
    server, manager = make_server(
        [
            DpdkWorkload(name="net", cores=2, priority="HPW"),
            FioWorkload(name="fio", block_bytes=2 * MB, cores=2, priority="LPW"),
        ],
        policy=policy,
    )
    server.run(epochs=10, warmup=2)
    assert manager.antagonists == {}
    fio = server.workload("fio")
    assert server.pcie.port(fio.port_id).dca_enabled


def test_pseudo_bypass_flag_off_keeps_antagonist_in_lp_zone():
    policy = A4Policy(pseudo_llc_bypass=False)
    server, manager = make_server(
        [
            DpdkWorkload(name="net", cores=2, priority="HPW"),
            FioWorkload(name="fio", block_bytes=2 * MB, cores=2, priority="LPW"),
        ],
        policy=policy,
    )
    server.run(epochs=12, warmup=2)
    if "fio" in manager.antagonists:  # detection is on in A4-c
        assert manager.ways_of("fio") == tuple(
            range(manager.layout.lp_span()[0], manager.layout.lp_span()[1] + 1)
        )


def test_periodic_revert_happens_in_stable_state():
    server, manager = make_server(
        [
            xmem("hp", 1.0, cores=1, priority="HPW"),
            xmem("lp", 1.0, cores=1, priority="LPW"),
        ],
        policy=A4Policy(stable_interval=3),
    )
    server.run(epochs=20, warmup=2)
    assert manager.reverts >= 1
    # After reverting it returns to the stable span rather than sticking
    # at the initial partitions.
    assert manager.phase in (PHASE_STABLE, PHASE_REVERTING, PHASE_EXPANDING)


def test_oracle_policy_never_reverts():
    server, manager = make_server(
        [
            xmem("hp", 1.0, cores=1, priority="HPW"),
            xmem("lp", 1.0, cores=1, priority="LPW"),
        ],
        policy=A4Policy(stable_interval=10**9),
    )
    server.run(epochs=16, warmup=2)
    assert manager.reverts == 0


def test_events_log_is_populated():
    server, manager = make_server(
        [
            DpdkWorkload(name="net", cores=2, priority="HPW"),
            FioWorkload(name="fio", block_bytes=2 * MB, cores=2, priority="LPW"),
        ]
    )
    server.run(epochs=8, warmup=2)
    assert any("reallocate" in e for e in manager.events)


def test_policy_flags_reachable_via_variants():
    from repro.core.variants import a4_variant

    assert not a4_variant("a").policy.safeguard_io_buffers
    assert a4_variant("b").policy.safeguard_io_buffers
    assert not a4_variant("b").policy.selective_dca_disable
    assert a4_variant("c").policy.selective_dca_disable
    assert not a4_variant("c").policy.pseudo_llc_bypass
    assert a4_variant("d").policy.pseudo_llc_bypass
    with pytest.raises(ValueError):
        a4_variant("e")
