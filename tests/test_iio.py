"""Tests for the IIO agent: DMA routed per the port's DCA state."""

from repro import config
from repro.telemetry.counters import CounterBank
from repro.uncore.iio import IIOAgent
from repro.uncore.pcie import PcieComplex


def test_inbound_write_allocating(hierarchy, bank):
    iio = IIOAgent(hierarchy)
    port = PcieComplex(bank).add_port(0, "nic")
    iio.inbound_write(0.0, port, 42, "nic")
    line = hierarchy.llc.lookup(42, touch=False)
    assert line is not None and line.way in config.DCA_WAYS
    assert port.inbound_write_lines == 1


def test_inbound_write_non_allocating(hierarchy, bank):
    iio = IIOAgent(hierarchy)
    port = PcieComplex(bank).add_port(0, "ssd")
    port.disable_dca()
    iio.inbound_write(0.0, port, 42, "ssd")
    assert hierarchy.llc.lookup(42, touch=False) is None
    assert bank.stream("ssd").mem_writes == 1


def test_burst_writes_consecutive_lines(hierarchy, bank):
    iio = IIOAgent(hierarchy)
    port = PcieComplex(bank).add_port(0, "nic")
    iio.inbound_write_burst(0.0, port, 100, 4, "nic")
    for offset in range(4):
        assert hierarchy.llc.lookup(100 + offset, touch=False) is not None
    assert port.inbound_write_lines == 4
    assert bank.stream("nic").dma_writes == 4


def test_outbound_read(hierarchy, bank):
    iio = IIOAgent(hierarchy)
    port = PcieComplex(bank).add_port(0, "nic")
    iio.outbound_read(0.0, port, 7, "nic")
    assert port.inbound_read_lines == 1
    assert bank.stream("nic").dma_reads == 1
