"""Tests for the workload base class and StreamInfo plumbing."""

import pytest

from repro.telemetry.pcm import KIND_CPU, PRIORITY_HIGH
from repro.workloads.base import Workload
from repro.workloads.xmem import xmem


class Dummy(Workload):
    def setup(self, server):
        self.cores = server.alloc_cores(self.num_cores)


def test_requires_positive_cores():
    with pytest.raises(ValueError):
        Dummy("d", cores=0)


def test_info_reflects_setup_state():
    from repro.experiments.harness import Server

    server = Server(cores=4)
    workload = Dummy("d", cores=2)
    server.add_workload(workload)
    info = workload.info()
    assert info.name == "d"
    assert info.kind == KIND_CPU
    assert info.priority == PRIORITY_HIGH
    assert info.cores == workload.cores
    assert info.port_id is None


def test_io_workloads_report_port():
    from repro.experiments.harness import Server
    from repro.workloads.dpdk import DpdkWorkload

    server = Server(cores=4)
    workload = DpdkWorkload(name="net", cores=2)
    server.add_workload(workload)
    assert workload.info().port_id is not None
    assert workload.info().is_io


def test_repr_is_stable():
    text = repr(xmem("x", 1.0, cores=1))
    assert "x" in text and "non-io" in text
