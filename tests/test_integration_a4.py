"""End-to-end scheme comparison: A4 must beat Default for HPWs without
notably hurting LPWs (the paper's headline claim), on the §7.1
microbenchmark combination."""

import pytest

from repro.experiments.scenarios import build_server, microbenchmark_workloads

MB = 1024 * 1024
EPOCHS = 22
WARMUP = 6


@pytest.fixture(scope="module")
def results():
    out = {}
    for scheme in ("default", "isolate", "a4"):
        server = build_server(microbenchmark_workloads(), scheme=scheme)
        out[scheme] = server.run(epochs=EPOCHS, warmup=WARMUP)
    return out


def test_a4_improves_hpw_network_latency(results):
    default = results["default"].aggregate("dpdk-t")
    a4 = results["a4"].aggregate("dpdk-t")
    assert a4.avg_latency < 0.7 * default.avg_latency


def test_a4_improves_hpw_xmem_ipc(results):
    default = results["default"].aggregate("xmem1")
    a4 = results["a4"].aggregate("xmem1")
    assert a4.ipc > 1.3 * default.ipc  # paper: 1.3x-1.78x


def test_a4_keeps_hpw_hit_rate_high(results):
    assert results["a4"].aggregate("xmem1").llc_hit_rate > 0.9


def test_a4_does_not_crush_lpws(results):
    for lpw in ("xmem2", "xmem3"):
        default = results["default"].aggregate(lpw)
        a4 = results["a4"].aggregate(lpw)
        assert a4.ipc > 0.6 * default.ipc


def test_a4_keeps_storage_throughput(results):
    default = results["default"].aggregate("fio")
    a4 = results["a4"].aggregate("fio")
    assert a4.throughput == pytest.approx(default.throughput, rel=0.15)


def test_a4_detects_fio_as_storage_antagonist(results):
    server = build_server(microbenchmark_workloads(), scheme="a4")
    server.run(epochs=12, warmup=4)
    manager = server.manager
    assert "fio" in manager.antagonists
    assert manager.antagonists["fio"].kind == "storage"


def test_isolate_is_not_better_than_a4_for_hpws(results):
    isolate = results["isolate"].aggregate("xmem1")
    a4 = results["a4"].aggregate("xmem1")
    assert a4.ipc >= isolate.ipc
