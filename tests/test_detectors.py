"""Tests for A4's detectors."""

from repro.core.detectors import (
    AntagonistState,
    RestoreChecker,
    cpu_antagonist_detected,
    hpw_hit_rate_degraded,
    hpw_phase_changed,
    relative_change,
    storage_leak_detected,
)
from repro.core.policy import A4Policy
from repro.telemetry.counters import StreamCounters
from repro.telemetry.pcm import (
    EpochSample,
    KIND_CPU,
    KIND_NETWORK,
    KIND_STORAGE,
    StreamInfo,
    StreamSample,
)
from repro.telemetry.latency import LatencyStats


def make_stream(name, kind, counters):
    return StreamSample(
        name=name,
        info=StreamInfo(name, kind=kind),
        counters=counters,
        latency=LatencyStats(),
        epoch_cycles=10_000.0,
    )


def make_sample(streams):
    return EpochSample(
        index=0,
        time=0.0,
        epoch_cycles=10_000.0,
        streams={s.name: s for s in streams},
        mem_read_lines=0,
        mem_write_lines=0,
    )


def leaky_storage(dma_writes=1000):
    return make_stream(
        "ssd",
        KIND_STORAGE,
        StreamCounters(
            io_reads=1000,
            io_read_misses=800,
            llc_hits=100,
            llc_misses=900,
            dma_writes=dma_writes,
        ),
    )


def test_relative_change():
    assert relative_change(1.1, 1.0) == 0.10000000000000009
    assert relative_change(0.0, 0.0) == 0.0
    assert relative_change(1.0, 0.0) == 1.0


def test_storage_leak_detected_positive():
    policy = A4Policy()
    stream = leaky_storage()
    sample = make_sample([stream])
    assert storage_leak_detected(policy, sample, stream)


def test_storage_leak_requires_storage_dominance():
    policy = A4Policy()
    ssd = leaky_storage(dma_writes=100)
    nic = make_stream("nic", KIND_NETWORK, StreamCounters(dma_writes=900))
    sample = make_sample([ssd, nic])
    # storage share = 10% < T3 (35%)
    assert not storage_leak_detected(policy, sample, ssd)


def test_storage_leak_requires_dca_misses():
    policy = A4Policy()
    stream = make_stream(
        "ssd",
        KIND_STORAGE,
        StreamCounters(io_reads=1000, io_read_misses=10, llc_misses=900, llc_hits=100, dma_writes=100),
    )
    assert not storage_leak_detected(policy, make_sample([stream]), stream)


def test_storage_leak_ignores_idle_stream():
    policy = A4Policy()
    stream = make_stream("ssd", KIND_STORAGE, StreamCounters(io_reads=5, io_read_misses=5))
    assert not storage_leak_detected(policy, make_sample([stream]), stream)


def test_cpu_antagonist_detection():
    policy = A4Policy()
    antagonist = make_stream(
        "bwaves",
        KIND_CPU,
        StreamCounters(mlc_hits=5, mlc_misses=995, llc_hits=5, llc_misses=995),
    )
    friendly = make_stream(
        "x264",
        KIND_CPU,
        StreamCounters(mlc_hits=900, mlc_misses=100, llc_hits=90, llc_misses=10),
    )
    assert cpu_antagonist_detected(policy, antagonist)
    assert not cpu_antagonist_detected(policy, friendly)


def test_cpu_antagonist_needs_activity():
    policy = A4Policy()
    idle = make_stream("idle", KIND_CPU, StreamCounters(mlc_misses=10, llc_misses=10))
    assert not cpu_antagonist_detected(policy, idle)


def test_hpw_degradation_thresholds():
    policy = A4Policy()
    assert hpw_hit_rate_degraded(policy, baseline_hit_rate=0.9, current_hit_rate=0.6)
    assert not hpw_hit_rate_degraded(policy, 0.9, 0.8)
    assert not hpw_hit_rate_degraded(policy, 0.0, 0.0)


def test_phase_change_is_two_sided():
    policy = A4Policy()
    assert hpw_phase_changed(policy, 0.5, 0.9)  # improvement beyond T1
    assert hpw_phase_changed(policy, 0.9, 0.5)
    assert not hpw_phase_changed(policy, 0.9, 0.85)


def test_restore_checker_cpu_after_phase_end():
    policy = A4Policy()
    checker = RestoreChecker(policy)
    state = AntagonistState(
        name="bwaves", kind="cpu", original_priority="LPW",
        detection_metric=0.99, span_left=8, grace_epochs=0,
    )
    still_bad = make_stream(
        "bwaves", KIND_CPU,
        StreamCounters(mlc_hits=5, mlc_misses=995, llc_hits=5, llc_misses=995),
    )
    recovered = make_stream(
        "bwaves", KIND_CPU,
        StreamCounters(mlc_hits=600, mlc_misses=400, llc_hits=600, llc_misses=400),
    )
    assert not checker.should_restore(state, still_bad)
    assert checker.should_restore(state, recovered)


def test_restore_checker_grace_blocks_and_rebases():
    policy = A4Policy()
    checker = RestoreChecker(policy)
    state = AntagonistState(
        name="ssd", kind="storage", original_priority="LPW",
        detection_metric=0.05, span_left=8, grace_epochs=2,
    )
    counters = StreamCounters(io_bytes_completed=64 * 1000)
    stream = make_stream("ssd", KIND_STORAGE, counters)
    assert not checker.should_restore(state, stream)  # grace 2 -> 1
    assert not checker.should_restore(state, stream)  # grace 1 -> 0, re-base
    assert state.detection_metric == stream.io_throughput_lines_per_cycle
    # Same throughput now: no restore.
    assert not checker.should_restore(state, stream)


def test_restore_checker_storage_phase_change():
    policy = A4Policy()
    checker = RestoreChecker(policy)
    state = AntagonistState(
        name="ssd", kind="storage", original_priority="LPW",
        detection_metric=0.10, span_left=8, grace_epochs=0,
    )
    crashed = make_stream("ssd", KIND_STORAGE, StreamCounters(io_bytes_completed=64))
    assert checker.should_restore(state, crashed)
