"""Tests for the mid-level cache model."""

import pytest

from repro.cache.line import MlcLine
from repro.cache.mlc import MidLevelCache


def make(sets=4, ways=2):
    return MidLevelCache(core_id=0, sets=sets, ways=ways)


def test_insert_and_lookup():
    mlc = make()
    mlc.insert(MlcLine(addr=4, stream="s"))
    assert mlc.lookup(4) is not None
    assert mlc.lookup(8) is None


def test_capacity_and_occupancy():
    mlc = make(sets=4, ways=2)
    assert mlc.capacity_lines == 8
    for addr in range(8):
        mlc.insert(MlcLine(addr=addr, stream="s"))
    assert mlc.occupancy() == 8


def test_eviction_is_lru_within_set():
    mlc = make(sets=1, ways=2)
    mlc.insert(MlcLine(addr=0, stream="s"))
    mlc.insert(MlcLine(addr=1, stream="s"))
    mlc.lookup(0)  # make addr 0 most-recent
    victim = mlc.insert(MlcLine(addr=2, stream="s"))
    assert victim is not None and victim.addr == 1


def test_conflict_only_within_same_set():
    mlc = make(sets=4, ways=1)
    assert mlc.insert(MlcLine(addr=0, stream="s")) is None
    assert mlc.insert(MlcLine(addr=1, stream="s")) is None  # different set
    victim = mlc.insert(MlcLine(addr=4, stream="s"))  # maps to set 0
    assert victim is not None and victim.addr == 0


def test_double_insert_raises():
    mlc = make()
    mlc.insert(MlcLine(addr=3, stream="s"))
    with pytest.raises(ValueError):
        mlc.insert(MlcLine(addr=3, stream="s"))


def test_invalidate_returns_line_and_removes():
    mlc = make()
    mlc.insert(MlcLine(addr=5, stream="s", dirty=True))
    dropped = mlc.invalidate(5)
    assert dropped is not None and dropped.dirty
    assert mlc.lookup(5) is None
    assert mlc.invalidate(5) is None


def test_peek_does_not_touch_lru():
    mlc = make(sets=1, ways=2)
    mlc.insert(MlcLine(addr=0, stream="s"))
    mlc.insert(MlcLine(addr=1, stream="s"))
    mlc.peek(0)  # must NOT refresh addr 0
    victim = mlc.insert(MlcLine(addr=2, stream="s"))
    assert victim.addr == 0


def test_resident_iterates_all():
    mlc = make()
    for addr in (0, 1, 2):
        mlc.insert(MlcLine(addr=addr, stream="s"))
    assert sorted(line.addr for line in mlc.resident()) == [0, 1, 2]


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        MidLevelCache(core_id=0, sets=0, ways=2)
