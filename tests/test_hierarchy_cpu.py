"""CPU-side behaviour of the cache hierarchy: non-inclusive fills, victim
cache, RFOs, and cross-MLC snoops."""

from repro import config


def test_first_access_misses_to_memory(hierarchy, bank):
    latency = hierarchy.cpu_access(0.0, 0, 100, "s")
    c = bank.stream("s")
    assert c.mlc_misses == 1 and c.llc_misses == 1
    assert c.mem_reads == 1
    assert latency >= config.MEMORY_CYCLES


def test_miss_fills_mlc_only_non_inclusive(hierarchy):
    hierarchy.cpu_access(0.0, 0, 100, "s")
    assert hierarchy.mlcs[0].peek(100) is not None
    assert hierarchy.llc.lookup(100, touch=False) is None


def test_second_access_hits_mlc(hierarchy, bank):
    hierarchy.cpu_access(0.0, 0, 100, "s")
    latency = hierarchy.cpu_access(1.0, 0, 100, "s")
    assert bank.stream("s").mlc_hits == 1
    assert latency == config.MLC_HIT_CYCLES


def test_mlc_eviction_allocates_into_llc(hierarchy):
    mlc_capacity = hierarchy.mlcs[0].capacity_lines
    for addr in range(mlc_capacity + 1):
        hierarchy.cpu_access(0.0, 0, addr, "s")
    # addr 0 was the LRU of its set and must now be in the LLC.
    assert hierarchy.mlcs[0].peek(0) is None
    assert hierarchy.llc.lookup(0, touch=False) is not None


def test_llc_hit_transfers_line_back_to_mlc(hierarchy, bank):
    mlc_capacity = hierarchy.mlcs[0].capacity_lines
    for addr in range(mlc_capacity + 1):
        hierarchy.cpu_access(0.0, 0, addr, "s")
    latency = hierarchy.cpu_access(1.0, 0, 0, "s")
    assert latency == config.LLC_HIT_CYCLES
    assert bank.stream("s").llc_hits == 1
    # Non-inclusive victim-cache: the regular line's LLC copy is invalidated.
    assert hierarchy.llc.lookup(0, touch=False) is None
    assert hierarchy.mlcs[0].peek(0) is not None


def test_llc_fill_respects_cat_mask(hierarchy, cat):
    cat.set_mask(1, range(5, 7))
    cat.associate(0, 1)
    for addr in range(hierarchy.mlcs[0].capacity_lines + 64):
        hierarchy.cpu_access(0.0, 0, addr, "s")
    ways = {line.way for line in hierarchy.llc.resident() if line.stream == "s"}
    assert ways <= {5, 6}


def test_store_marks_mlc_line_dirty(hierarchy):
    hierarchy.cpu_access(0.0, 0, 100, "s", write=True)
    assert hierarchy.mlcs[0].peek(100).dirty


def test_dirty_eviction_writes_back_to_memory_eventually(hierarchy, bank):
    # Fill with dirty lines, then displace them through LLC and out.
    llc_lines = hierarchy.llc.cfg.sets * hierarchy.llc.cfg.ways
    span = hierarchy.mlcs[0].capacity_lines + 2 * llc_lines
    for addr in range(0, span, 1):
        hierarchy.cpu_access(0.0, 0, addr, "s", write=True)
    assert bank.stream("s").mem_writes > 0


def test_store_hit_invalidates_stale_llc_copy(hierarchy):
    capacity = hierarchy.mlcs[0].capacity_lines
    for addr in range(capacity + 1):
        hierarchy.cpu_access(0.0, 0, addr, "s")
    # addr 0 in LLC; re-read brings it to MLC (LLC copy dropped for regular
    # lines), then a store hit must leave no stale LLC copy.
    hierarchy.cpu_access(1.0, 0, 0, "s")
    hierarchy.cpu_access(2.0, 0, 0, "s", write=True)
    assert hierarchy.llc.lookup(0, touch=False) is None
    assert hierarchy.mlcs[0].peek(0).dirty


def test_snoop_hit_from_peer_mlc(hierarchy, bank):
    hierarchy.cpu_access(0.0, 0, 100, "a")
    latency = hierarchy.cpu_access(1.0, 1, 100, "b")
    assert latency == hierarchy.cfg.snoop_hit_cycles
    assert bank.stream("b").llc_hits == 1
    assert hierarchy.mlcs[0].peek(100) is not None
    assert hierarchy.mlcs[1].peek(100) is not None


def test_write_to_shared_line_invalidates_peers(hierarchy):
    hierarchy.cpu_access(0.0, 0, 100, "a")
    hierarchy.cpu_access(1.0, 1, 100, "b", write=True)
    assert hierarchy.mlcs[0].peek(100) is None
    assert hierarchy.mlcs[1].peek(100).dirty


def test_shared_then_evicted_copy_drops_silently(hierarchy, bank):
    hierarchy.cpu_access(0.0, 0, 100, "a")
    hierarchy.cpu_access(1.0, 1, 100, "b")
    # Evict core 1's copy by conflict; core 0 still holds it, so no LLC fill.
    sets = hierarchy.cfg.mlc_sets
    ways = hierarchy.cfg.mlc_ways
    for i in range(1, ways + 1):
        hierarchy.cpu_access(2.0, 1, 100 + i * sets, "b")
    assert hierarchy.mlcs[1].peek(100) is None
    assert hierarchy.llc.lookup(100, touch=False) is None
    assert hierarchy.mlcs[0].peek(100) is not None


def test_ipc_counters_untouched_by_hierarchy(hierarchy, bank):
    hierarchy.cpu_access(0.0, 0, 1, "s")
    assert bank.stream("s").instructions == 0
