"""Tests for the DPDK workload model."""

import pytest

from repro.experiments.harness import Server
from repro.workloads.dpdk import DpdkWorkload


def run_dpdk(touch=True, epochs=5, **kwargs):
    server = Server(cores=6)
    workload = DpdkWorkload(name="dpdk", touch=touch, cores=4, **kwargs)
    server.add_workload(workload)
    return server, workload, server.run(epochs=epochs, warmup=1)


def test_descriptor_and_payload_reads_counted():
    server, workload, result = run_dpdk(touch=True, packet_bytes=1024)
    counters = server.counters.stream("dpdk")
    assert counters.io_reads > 0
    assert counters.io_requests_completed > 0
    # 16 lines per packet -> io reads ~= 16x packets
    assert counters.io_reads >= counters.io_requests_completed * 16


def test_no_touch_reads_only_descriptor():
    server, workload, result = run_dpdk(touch=False, packet_bytes=1024)
    counters = server.counters.stream("dpdk")
    assert counters.io_reads == pytest.approx(counters.io_requests_completed, abs=4)


def test_latency_components_recorded():
    server, workload, result = run_dpdk(touch=True)
    agg = result.aggregate("dpdk")
    assert agg.requests > 0
    assert set(agg.latency_components) == {"queueing", "access", "processing"}
    assert agg.avg_latency > 0


def test_no_touch_has_zero_processing():
    server, workload, result = run_dpdk(touch=False)
    agg = result.aggregate("dpdk")
    assert agg.latency_components["processing"] == 0.0


def test_throughput_tracks_offered_load():
    server, workload, result = run_dpdk(touch=True, line_rate=0.05)
    agg = result.aggregate("dpdk")
    assert agg.throughput == pytest.approx(0.05, rel=0.2)
    assert agg.packets_dropped == 0


def test_one_ring_per_core():
    server, workload, _ = run_dpdk()
    assert len(workload.rings) == 4
    assert workload.port_id is not None


def test_overload_produces_drops():
    server, workload, result = run_dpdk(touch=True, line_rate=0.5, epochs=4)
    agg = result.aggregate("dpdk")
    assert agg.packets_dropped > 0
    assert agg.throughput < 0.5


def test_payload_parallelism_validation():
    with pytest.raises(ValueError):
        DpdkWorkload(payload_parallelism=0.5)
