"""Tests for the A4 policy dataclass."""

import pytest

from repro.core.policy import A4Policy


def test_paper_defaults():
    policy = A4Policy()
    assert policy.hpw_llc_hit_thr == 0.20
    assert policy.dmalk_dca_ms_thr == 0.40
    assert policy.dmalk_io_tp_thr == 0.35
    assert policy.dmalk_llc_ms_thr == 0.40
    assert policy.ant_cache_miss_thr == 0.90
    assert policy.expand_interval == 2
    assert policy.stable_interval == 10
    assert policy.revert_interval == 1


def test_threshold_bounds_validated():
    with pytest.raises(ValueError):
        A4Policy(hpw_llc_hit_thr=0.0)
    with pytest.raises(ValueError):
        A4Policy(ant_cache_miss_thr=1.5)
    with pytest.raises(ValueError):
        A4Policy(stable_interval=0)


def test_feature_flags_default_on():
    policy = A4Policy()
    assert policy.safeguard_io_buffers
    assert policy.selective_dca_disable
    assert policy.pseudo_llc_bypass
