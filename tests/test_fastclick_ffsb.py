"""Tests for the Fastclick and FFSB real-world workload factories."""

from repro.workloads.fastclick import fastclick
from repro.workloads.ffsb import ffsb_heavy, ffsb_light

KB = 1024
MB = 1024 * KB


def test_fastclick_matches_table2():
    w = fastclick()
    assert w.num_cores == 4
    assert w.packet_bytes == 1024
    assert w.touch
    assert w.kind == "network-io"


def test_fastclick_processing_heavier_than_dpdk_micro():
    from repro.workloads.dpdk import DpdkWorkload

    micro = DpdkWorkload()
    fc = fastclick()
    assert fc.processing_cycles_per_line > micro.processing_cycles_per_line


def test_ffsb_heavy_matches_table2():
    w = ffsb_heavy()
    assert w.num_cores == 3
    assert w.block_bytes == 2 * MB
    assert w.kind == "storage-io"


def test_ffsb_light_matches_table2():
    w = ffsb_light()
    assert w.num_cores == 1
    assert w.block_bytes == 32 * KB


def test_heavy_blocks_dwarf_light_blocks():
    assert ffsb_heavy().block_lines > 10 * ffsb_light().block_lines


def test_custom_priority_propagates():
    assert fastclick(priority="LPW").priority == "LPW"
    assert ffsb_heavy(priority="HPW").priority == "HPW"
