"""Tests for figure-result rendering."""

import pytest

from repro.experiments.report import (
    FigureResult,
    format_cell,
    geometric_mean,
    normalize,
    render_table,
)


def make_result():
    result = FigureResult(
        figure="Fig. X",
        title="demo",
        columns=["name", "value"],
    )
    result.add_row(name="a", value=1.2345)
    result.add_row(name="b", value=10_000.0)
    return result


def test_render_contains_header_and_rows():
    text = make_result().render()
    assert "Fig. X" in text
    assert "name" in text and "value" in text
    assert "a" in text and "b" in text


def test_format_cell_floats():
    assert format_cell(0.0) == "0"
    assert format_cell(1234.5) == "1234"
    assert format_cell(12.34) == "12.3"
    assert format_cell(0.5) == "0.5"
    assert format_cell("txt") == "txt"


def test_column_accessor():
    result = make_result()
    assert result.column("name") == ["a", "b"]


def test_notes_rendered():
    result = make_result()
    result.notes.append("hello world")
    assert "note: hello world" in result.render()


def test_empty_table_renders():
    result = FigureResult(figure="F", title="t", columns=["c1"])
    assert "c1" in render_table(result)


def test_normalize():
    assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
    assert normalize([2.0], 0.0) == [0.0]


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0.0, 0.0]) == 0.0
