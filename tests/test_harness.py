"""Tests for the server harness and run aggregation."""

import pytest

from repro.experiments.harness import Server
from repro.workloads.xmem import xmem


def test_core_allocation_is_exclusive():
    server = Server(cores=4)
    a = server.alloc_cores(2)
    b = server.alloc_cores(2)
    assert set(a).isdisjoint(b)
    with pytest.raises(RuntimeError):
        server.alloc_cores(1)


def test_region_allocation_never_overlaps():
    server = Server(cores=2)
    r1 = server.alloc_region(100)
    r2 = server.alloc_region(50)
    assert r2 >= r1 + 100


def test_ports_get_unique_ids():
    server = Server(cores=2)
    p0 = server.add_port("nic")
    p1 = server.add_port("ssd")
    assert p0.port_id != p1.port_id
    assert server.pcie.port(p0.port_id) is p0


def test_add_workload_assigns_clos_and_registers():
    server = Server(cores=4)
    workload = server.add_workload(xmem("a", 1.0, cores=2))
    clos = server.clos_of("a")
    assert clos >= 1
    for core in workload.cores:
        assert server.cat.clos_of(core) == clos
    assert "a" in server.pcm.infos


def test_workload_lookup():
    server = Server(cores=4)
    server.add_workload(xmem("a", 1.0, cores=1))
    assert server.workload("a").name == "a"
    with pytest.raises(KeyError):
        server.workload("nope")


def test_run_produces_epoch_samples():
    server = Server(cores=2)
    server.add_workload(xmem("a", 1.0, cores=1))
    result = server.run(epochs=5, warmup=2)
    assert len(result.samples) == 5
    assert len(result.window) == 3
    assert result.samples[0].time == server.epoch_cycles


def test_run_requires_more_epochs_than_warmup():
    server = Server(cores=2)
    server.add_workload(xmem("a", 1.0, cores=1))
    with pytest.raises(ValueError):
        server.run(epochs=2, warmup=2)


def test_aggregate_means_over_window():
    server = Server(cores=2)
    server.add_workload(xmem("a", 1.0, cores=1))
    result = server.run(epochs=6, warmup=2)
    agg = result.aggregate("a")
    assert agg.ipc > 0
    assert 0.0 <= agg.llc_hit_rate <= 1.0


def test_aggregate_unknown_stream_is_empty():
    server = Server(cores=2)
    server.add_workload(xmem("a", 1.0, cores=1))
    result = server.run(epochs=4, warmup=1)
    agg = result.aggregate("ghost")
    assert agg.ipc == 0.0 and agg.requests == 0


def test_summary_renders_all_streams():
    server = Server(cores=3)
    server.add_workload(xmem("alpha", 1.0, cores=1))
    server.add_workload(xmem("beta", 1.0, cores=1))
    result = server.run(epochs=4, warmup=1)
    text = result.summary()
    assert "alpha" in text and "beta" in text and "memory bandwidth" in text


def test_deterministic_given_seed():
    def one(seed):
        server = Server(cores=3, seed=seed)
        server.add_workload(xmem("a", 2.0, cores=1, pattern="rand"))
        result = server.run(epochs=4, warmup=1)
        return result.aggregate("a").ipc

    assert one(1) == one(1)
    assert one(1) != one(2)
