"""Tests for PCIe ports and the hidden per-port DCA knob."""

import pytest

from repro.telemetry.counters import CounterBank
from repro.uncore.pcie import PcieComplex, PerfCtrlSts


def test_default_register_enables_dca():
    reg = PerfCtrlSts()
    assert reg.dca_enabled


def test_register_semantics():
    # DCA requires the allocating flow AND snooped writes.
    assert not PerfCtrlSts(use_allocating_flow_wr=False).dca_enabled
    assert not PerfCtrlSts(no_snoop_op_wr_en=True).dca_enabled


def test_disable_enable_roundtrip():
    complex_ = PcieComplex(CounterBank())
    port = complex_.add_port(0, "nic")
    port.disable_dca()
    assert not port.dca_enabled
    assert port.perfctrlsts.no_snoop_op_wr_en
    assert not port.perfctrlsts.use_allocating_flow_wr
    port.enable_dca()
    assert port.dca_enabled


def test_per_port_independence():
    complex_ = PcieComplex(CounterBank())
    nic = complex_.add_port(0, "nic")
    ssd = complex_.add_port(1, "ssd")
    ssd.disable_dca()
    assert nic.dca_enabled and not ssd.dca_enabled


def test_duplicate_port_rejected():
    complex_ = PcieComplex(CounterBank())
    complex_.add_port(0)
    with pytest.raises(ValueError):
        complex_.add_port(0)


def test_inbound_write_accounting():
    complex_ = PcieComplex(CounterBank())
    a = complex_.add_port(0)
    b = complex_.add_port(1)
    a.inbound_write_lines += 10
    b.inbound_write_lines += 5
    assert complex_.total_inbound_write_lines() == 15
    assert set(complex_.ports()) == {0, 1}
