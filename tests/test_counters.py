"""Tests for the counter bank and derived rates."""

from repro.telemetry.counters import CounterBank, StreamCounters


def test_stream_created_on_demand():
    bank = CounterBank()
    bank.stream("a").llc_hits += 1
    assert bank.stream("a").llc_hits == 1
    assert "a" in bank.streams


def test_snapshot_and_delta():
    c = StreamCounters(llc_hits=10, mem_reads=5)
    snap = c.snapshot()
    c.llc_hits += 3
    c.mem_reads += 1
    delta = c.delta(snap)
    assert delta.llc_hits == 3 and delta.mem_reads == 1
    assert snap.llc_hits == 10  # snapshot unchanged


def test_hit_and_miss_rates():
    c = StreamCounters(llc_hits=3, llc_misses=1)
    assert c.llc_accesses == 4
    assert c.llc_hit_rate == 0.75
    assert c.llc_miss_rate == 0.25


def test_rates_zero_when_idle():
    c = StreamCounters()
    assert c.llc_hit_rate == 0.0
    assert c.mlc_miss_rate == 0.0
    assert c.dca_miss_rate == 0.0


def test_dca_miss_rate():
    c = StreamCounters(io_reads=10, io_read_misses=4)
    assert c.dca_miss_rate == 0.4


def test_mlc_miss_rate():
    c = StreamCounters(mlc_hits=1, mlc_misses=3)
    assert c.mlc_miss_rate == 0.75


def test_bank_total_aggregates_all_streams():
    bank = CounterBank()
    bank.stream("a").mem_reads = 2
    bank.stream("b").mem_reads = 3
    bank.stream("b").dma_leaks = 1
    total = bank.total()
    assert total.mem_reads == 5 and total.dma_leaks == 1


def test_snapshot_all():
    bank = CounterBank()
    bank.stream("a").llc_hits = 7
    snaps = bank.snapshot_all()
    bank.stream("a").llc_hits = 9
    assert snaps["a"].llc_hits == 7
