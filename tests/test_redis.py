"""Tests for the Redis server/client pair."""

from repro.experiments.harness import Server
from repro.workloads.redis import RedisChannel, redis_pair


def run_pair(epochs=5):
    server = Server(cores=4)
    redis_s, redis_c = redis_pair()
    server.add_workload(redis_s)
    server.add_workload(redis_c)
    return server, server.run(epochs=epochs, warmup=1)


def test_requests_complete():
    server, result = run_pair()
    agg = result.aggregate("redis-c")
    assert agg.requests > 0
    assert agg.avg_latency > 0


def test_server_and_client_both_execute():
    server, result = run_pair()
    assert result.aggregate("redis-s").ipc > 0
    assert result.aggregate("redis-c").ipc > 0


def test_updates_write_to_log():
    server, result = run_pair()
    counters = server.counters.stream("redis-s")
    # Update-heavy YCSB-A: half the ops append to the persistence log,
    # producing dirty lines that eventually reach memory.
    assert counters.mlc_hits + counters.mlc_misses > 0
    total_writes = sum(
        s.streams["redis-s"].counters.mem_writes for s in result.samples
    )
    assert total_writes >= 0  # log writes may still be cached; no crash


def test_shared_regions_allocated_once():
    channel = RedisChannel()
    server = Server(cores=4)
    redis_s, redis_c = redis_pair()
    # both sides share one channel object internally
    assert redis_s.channel is redis_c.channel
    server.add_workload(redis_s)
    table_base = redis_s.channel.table_base
    server.add_workload(redis_c)
    assert redis_s.channel.table_base == table_base
    del channel


def test_zero_update_fraction_is_read_only():
    server = Server(cores=4)
    redis_s, redis_c = redis_pair()
    redis_c.update_fraction = 0.0
    server.add_workload(redis_s)
    server.add_workload(redis_c)
    server.run(epochs=3, warmup=1)
    assert server.counters.stream("redis-c").io_requests_completed > 0
