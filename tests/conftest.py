"""Shared fixtures: a small cache hierarchy and its supporting pieces,
plus run-cache isolation so tests never touch the repo's `.repro-cache/`."""

from __future__ import annotations

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.llc import LlcConfig
from repro.rdt.cat import CacheAllocation
from repro.telemetry.counters import CounterBank
from repro.uncore.iio import IIOAgent
from repro.uncore.memory import MemoryController
from repro.uncore.pcie import PcieComplex


@pytest.fixture(autouse=True)
def _isolated_run_cache(tmp_path, monkeypatch):
    """Point the content-addressed run cache at a per-test temp dir.

    Keeps test runs from writing into the repository and from observing
    entries another test (or a real figure run) stored."""
    from repro.experiments import runcache

    from repro.experiments import parallel

    monkeypatch.setenv(runcache.ENV_CACHE_DIR, str(tmp_path / "repro-cache"))
    monkeypatch.delenv(runcache.ENV_CACHE_DISABLE, raising=False)
    runcache.set_cache(None)  # re-init from env on next use
    yield
    runcache.set_cache(None)
    # Warm pool workers captured this test's cache env at spawn; drop them
    # so the next test gets workers pointed at its own temp dir.
    parallel.shutdown_pool()


@pytest.fixture(autouse=True)
def _obsv_off():
    """Leave the observability layer off and the metrics registry fresh.

    Tests that enable tracing (or write metrics) must not leak a live
    tracer or populated registry into the next test — the layer is
    process-global by design."""
    from repro import obsv
    from repro.obsv import metrics

    yield
    obsv.disable()
    metrics.set_registry(None)


@pytest.fixture
def bank() -> CounterBank:
    return CounterBank()


@pytest.fixture
def cat() -> CacheAllocation:
    return CacheAllocation()


@pytest.fixture
def memory(bank) -> MemoryController:
    return MemoryController(bank)


@pytest.fixture
def hierarchy(bank, cat, memory) -> CacheHierarchy:
    return CacheHierarchy(HierarchyConfig(cores=4), cat, memory, bank)


@pytest.fixture
def small_hierarchy(bank, cat, memory) -> CacheHierarchy:
    """A tiny geometry for exhaustive state checks: 8 sets, 11 ways."""
    cfg = HierarchyConfig(
        cores=2,
        llc=LlcConfig(sets=8),
        mlc_sets=2,
        mlc_ways=2,
    )
    return CacheHierarchy(cfg, cat, memory, bank)


@pytest.fixture
def pcie(bank) -> PcieComplex:
    return PcieComplex(bank)


@pytest.fixture
def iio(hierarchy) -> IIOAgent:
    return IIOAgent(hierarchy)
