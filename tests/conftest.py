"""Shared fixtures: a small cache hierarchy and its supporting pieces."""

from __future__ import annotations

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.llc import LlcConfig
from repro.rdt.cat import CacheAllocation
from repro.telemetry.counters import CounterBank
from repro.uncore.iio import IIOAgent
from repro.uncore.memory import MemoryController
from repro.uncore.pcie import PcieComplex


@pytest.fixture
def bank() -> CounterBank:
    return CounterBank()


@pytest.fixture
def cat() -> CacheAllocation:
    return CacheAllocation()


@pytest.fixture
def memory(bank) -> MemoryController:
    return MemoryController(bank)


@pytest.fixture
def hierarchy(bank, cat, memory) -> CacheHierarchy:
    return CacheHierarchy(HierarchyConfig(cores=4), cat, memory, bank)


@pytest.fixture
def small_hierarchy(bank, cat, memory) -> CacheHierarchy:
    """A tiny geometry for exhaustive state checks: 8 sets, 11 ways."""
    cfg = HierarchyConfig(
        cores=2,
        llc=LlcConfig(sets=8),
        mlc_sets=2,
        mlc_ways=2,
    )
    return CacheHierarchy(cfg, cat, memory, bank)


@pytest.fixture
def pcie(bank) -> PcieComplex:
    return PcieComplex(bank)


@pytest.fixture
def iio(hierarchy) -> IIOAgent:
    return IIOAgent(hierarchy)
