"""Tests for the content-addressed run cache.

Covers the ISSUE-2 keying contract: identical config+seed hits; any field,
seed, or code-salt change misses; a corrupted entry falls back to a
re-run.  Plus the figure-level wrapper: a warm second invocation does zero
simulation work and returns results identical to the first.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.experiments import runcache
from repro.experiments.figures import REGISTRY
from repro.experiments.figures.base import run_setup
from repro.experiments.runcache import (
    CachedFigure,
    CachedServer,
    CacheStats,
    RunCache,
    fingerprint,
)
from repro.workloads.xmem import xmem


def _cache(tmp_path) -> RunCache:
    return RunCache(root=tmp_path / "cache")


# -- fingerprinting --------------------------------------------------------


def test_fingerprint_stable_for_equal_payloads():
    a = fingerprint(("run", {"x": 1, "y": [2.0, 3]}, 0xA4))
    b = fingerprint(("run", {"y": [2.0, 3], "x": 1}, 0xA4))  # dict order
    assert a == b


def test_fingerprint_changes_on_any_field():
    base = ("run_setup", {"epochs": 8, "warmup": 2}, 0xA4)
    key = fingerprint(base)
    assert fingerprint(("run_setup", {"epochs": 9, "warmup": 2}, 0xA4)) != key
    assert fingerprint(("run_setup", {"epochs": 8, "warmup": 3}, 0xA4)) != key
    assert fingerprint(("run_setup", {"epochs": 8, "warmup": 2}, 0xA5)) != key


def test_fingerprint_changes_with_code_salt(monkeypatch):
    key = fingerprint("payload")
    monkeypatch.setattr(runcache, "_code_salt", "deadbeef")
    assert fingerprint("payload") != key


def test_fingerprint_distinguishes_workload_configs():
    a = fingerprint(xmem("a", 2.0, cores=1, pattern="rand"))
    same = fingerprint(xmem("a", 2.0, cores=1, pattern="rand"))
    other = fingerprint(xmem("a", 2.5, cores=1, pattern="rand"))
    assert a == same
    assert a != other


def test_callable_token_tracks_code_changes():
    def f(x):
        return x + 1

    def g(x):
        return x + 2

    def f2(x):
        return x + 1

    tok_f = runcache.callable_token(f)
    tok_g = runcache.callable_token(g)
    assert tok_f[-1] != tok_g[-1]  # different consts -> different hash
    assert runcache.callable_token(f2)[-1] == tok_f[-1]


def test_callable_token_stable_across_compilations():
    # Functions with nested code objects must hash by content, not by the
    # inner code object's repr (which embeds a memory address and would
    # break warm cache hits across interpreter runs).
    src = "def outer():\n    def inner(x):\n        return x + 1\n    return inner\n"
    ns1, ns2 = {}, {}
    exec(compile(src, "<m1>", "exec"), ns1)
    exec(compile(src, "<m2>", "exec"), ns2)
    assert runcache.callable_token(ns1["outer"]) == runcache.callable_token(ns2["outer"])


# -- the store -------------------------------------------------------------


def test_memo_hits_on_second_call(tmp_path):
    cache = _cache(tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return {"value": 42}

    first = cache.memo(("k", 1), compute)
    second = cache.memo(("k", 1), compute)
    assert first == second == {"value": 42}
    assert len(calls) == 1
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1


def test_disabled_cache_always_recomputes(tmp_path):
    cache = RunCache(root=tmp_path / "cache", enabled=False)
    calls = []
    for _ in range(2):
        cache.memo("k", lambda: calls.append(1))
    assert len(calls) == 2
    assert cache.stats.hits == 0
    assert not (tmp_path / "cache").exists()


def test_corrupted_entry_falls_back_to_rerun(tmp_path):
    cache = _cache(tmp_path)
    key = fingerprint("payload")
    cache.put(key, "good")
    path = cache._path(key)
    path.write_bytes(b"not a pickle")
    assert cache.get(key) is runcache.MISS
    assert cache.stats.errors == 1
    # memo recomputes and overwrites the bad entry.
    assert cache.memo("payload", lambda: "recomputed") == "recomputed"
    assert cache.memo("payload", lambda: "unused") == "recomputed"


def test_schema_skew_treated_as_miss(tmp_path):
    cache = _cache(tmp_path)
    key = fingerprint("payload")
    path = cache._path(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"schema": -1, "value": "stale"}))
    assert cache.get(key) is runcache.MISS
    assert cache.stats.errors == 1


def test_cached_none_is_distinguished_from_miss(tmp_path):
    cache = _cache(tmp_path)
    key = fingerprint("none-result")
    cache.put(key, None)
    assert cache.get(key) is None
    assert cache.stats.hits == 1


def test_stats_merge_and_summary():
    stats = CacheStats(hits=1, misses=2, stores=3, errors=0)
    stats.merge(CacheStats(hits=10, misses=0, stores=1, errors=4))
    assert (stats.hits, stats.misses, stats.stores, stats.errors) == (11, 2, 4, 4)
    assert "11 hits" in stats.summary()


def test_env_configuration(tmp_path, monkeypatch):
    monkeypatch.setenv(runcache.ENV_CACHE_DIR, str(tmp_path / "envcache"))
    monkeypatch.setenv(runcache.ENV_CACHE_DISABLE, "1")
    runcache.set_cache(None)
    cache = runcache.get_cache()
    assert cache.root == Path(tmp_path / "envcache")
    assert cache.enabled is False
    runcache.set_cache(None)


# -- run_setup caching -----------------------------------------------------


def _workloads():
    return [xmem("a", 2.0, cores=1, pattern="rand")]


def test_run_setup_second_call_is_a_hit_with_identical_aggregates():
    cache = runcache.get_cache()
    cold = run_setup(_workloads(), epochs=3, warmup=1, seed=9)
    assert cache.stats.stores >= 1
    warm = run_setup(_workloads(), epochs=3, warmup=1, seed=9)
    assert cache.stats.hits >= 1
    # The cached result carries a stub server, no live simulation state...
    assert isinstance(warm.server, CachedServer)
    assert warm.server.epoch_cycles == cold.server.epoch_cycles
    # ...and identical samples/aggregates.
    assert warm.samples == cold.samples
    agg_cold = cold.aggregate("a")
    agg_warm = warm.aggregate("a")
    assert agg_warm.ipc == agg_cold.ipc
    assert agg_warm.llc_hit_rate == agg_cold.llc_hit_rate


def test_run_setup_key_sensitive_to_seed_and_masks():
    run_setup(_workloads(), epochs=3, warmup=1, seed=9)
    cache = runcache.get_cache()
    misses = cache.stats.misses
    run_setup(_workloads(), epochs=3, warmup=1, seed=10)
    run_setup(_workloads(), masks={"a": (0, 3)}, epochs=3, warmup=1, seed=9)
    assert cache.stats.misses == misses + 2


# -- figure-level caching --------------------------------------------------


def test_registry_runners_are_cache_wrapped():
    for figure_id, runner in REGISTRY.items():
        assert isinstance(runner, CachedFigure), figure_id
        assert runner.figure_id == figure_id


def test_cached_figure_zero_simulation_on_warm_hit():
    from repro.sim import engine as engine_mod

    runner = REGISTRY["fig8b"]
    cold = runner(epochs=3, seed=5)

    # Count every simulated event during the warm call by patching the
    # Simulator entry points would be invasive; instead rely on the cache
    # stats plus a canary: a warm hit must not construct any Simulator.
    constructed = []
    original_init = engine_mod.Simulator.__init__

    def counting_init(self):
        constructed.append(self)
        original_init(self)

    engine_mod.Simulator.__init__ = counting_init
    try:
        warm = runner(epochs=3, seed=5)
    finally:
        engine_mod.Simulator.__init__ = original_init
    assert constructed == []  # zero simulation work
    assert warm == cold


def test_cached_figure_pickles_and_keeps_identity():
    runner = REGISTRY["fig8b"]
    clone = pickle.loads(pickle.dumps(runner))
    assert clone.figure_id == runner.figure_id
    assert clone.__cache_token__ == runner.__cache_token__


def test_cached_server_rejects_unknown_attributes():
    stub = CachedServer(epoch_cycles=50_000)
    assert stub.epoch_cycles == 50_000
    with pytest.raises(AttributeError):
        stub.manager  # noqa: B018 - attribute access is the assertion


# -- invalid entries degrade to a miss AND are evicted ----------------------


def _mangle(cache: RunCache, key: str, payload: bytes) -> Path:
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)
    return path


def test_truncated_pickle_is_evicted(tmp_path):
    cache = _cache(tmp_path)
    key = fingerprint("payload")
    cache.put(key, "good")
    path = _mangle(cache, key, pickle.dumps({"schema": 1})[:-3])
    assert cache.get(key) is runcache.MISS
    assert cache.stats.errors == 1
    assert not path.exists()  # the bad entry is gone, not just skipped


def test_key_echo_mismatch_is_evicted(tmp_path):
    cache = _cache(tmp_path)
    key = fingerprint("payload")
    wrapper = {
        "schema": runcache.SCHEMA_VERSION,
        "key": fingerprint("other payload"),  # entry landed in wrong slot
        "value": "stale",
    }
    path = _mangle(cache, key, pickle.dumps(wrapper))
    assert cache.get(key) is runcache.MISS
    assert cache.stats.errors == 1
    assert not path.exists()


def test_wrapper_missing_value_is_evicted(tmp_path):
    cache = _cache(tmp_path)
    key = fingerprint("payload")
    path = _mangle(
        cache,
        key,
        pickle.dumps({"schema": runcache.SCHEMA_VERSION, "key": key}),
    )
    assert cache.get(key) is runcache.MISS
    assert not path.exists()


def test_non_dict_wrapper_is_evicted(tmp_path):
    cache = _cache(tmp_path)
    key = fingerprint("payload")
    path = _mangle(cache, key, pickle.dumps(["bare", "value"]))
    assert cache.get(key) is runcache.MISS
    assert not path.exists()


def test_evicted_entry_recomputes_and_reheals(tmp_path):
    cache = _cache(tmp_path)
    key = fingerprint("payload")
    cache.put(key, "good")
    _mangle(cache, key, pickle.dumps({"schema": runcache.SCHEMA_VERSION}))
    assert cache.memo("payload", lambda: "recomputed") == "recomputed"
    # The re-put entry is valid again: next call is a warm hit.
    assert cache.memo("payload", lambda: "unused") == "recomputed"
    assert cache.get(key) == "recomputed"


def test_fault_intensity_env_changes_fingerprint(monkeypatch):
    monkeypatch.delenv(runcache.ENV_FAULT_INTENSITY, raising=False)
    clean = fingerprint("payload")
    monkeypatch.setenv(runcache.ENV_FAULT_INTENSITY, "0.5")
    faulted = fingerprint("payload")
    assert faulted != clean  # faulted results never alias fault-free ones
    monkeypatch.setenv(runcache.ENV_FAULT_INTENSITY, "1.0")
    assert fingerprint("payload") not in (clean, faulted)


def test_stale_schema_entry_is_evicted_on_first_lookup(tmp_path):
    """Schema v5 embedded the tenant spec in workload fingerprints (the
    ``priority`` attribute became a derived property); an entry written
    under any older schema must be a MISS *and* deleted on first lookup,
    not deserialized into the new shape."""
    assert runcache.SCHEMA_VERSION == 5
    cache = _cache(tmp_path)
    key = fingerprint("payload")
    wrapper = {
        "schema": 4,
        "key": key,
        "value": {"samples": [], "warmup": 0, "epoch_cycles": 1.0},
    }
    path = _mangle(cache, key, pickle.dumps(wrapper))
    assert cache.get(key) is runcache.MISS
    assert cache.stats.errors == 1
    assert not path.exists()  # evicted, so the next run re-simulates
