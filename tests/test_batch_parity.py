"""Randomized batch/scalar parity: batched dispatch is a pure perf mode.

Every test here drives two identical hierarchies — one with batching
forced on, one forced off — through the same randomized interleaved
DMA/CPU operation stream and asserts the end states are *identical*:
counters (every stream, every field), trace events, memory-controller
state, and the full cache state (LLC lines, MLC contents, snoop-filter
entries, including recency ordering).  Streams include the control-flow
boundaries the batched path must flush around: DCA-way reprogramming,
CLOS mask rewrites, non-allocating flows, and the write-update ablation.

Coverage spans all three platform presets and, at the end, a full server
run with fault injection enabled.
"""

import random

import pytest

from repro import obsv
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.llc import LlcConfig
from repro.platform import CASCADELAKE_SP, ICELAKE_SP, SKYLAKE_SP
from repro.rdt.cat import CacheAllocation
from repro.sim import batch
from repro.telemetry.counters import CounterBank
from repro.uncore.memory import MemoryController

PLATFORMS = {
    "skylake-sp": SKYLAKE_SP,
    "icelake-sp": ICELAKE_SP,
    "cascadelake-sp": CASCADELAKE_SP,
}


def build_hierarchy(spec, **cfg_overrides):
    bank = CounterBank()
    cat = CacheAllocation(ways=spec.llc_ways)
    memory = MemoryController.for_platform(bank, spec)
    llc = LlcConfig.for_platform(spec)
    # Small geometry for eviction pressure; way roles stay per-platform.
    llc = LlcConfig(
        sets=16,
        ways=llc.ways,
        dca_ways=llc.dca_ways,
        inclusive_ways=llc.inclusive_ways,
    )
    cfg = HierarchyConfig(
        cores=2, platform=spec, llc=llc, mlc_sets=4, mlc_ways=2,
        **cfg_overrides,
    )
    return CacheHierarchy(cfg, cat, memory, bank), bank, cat


def llc_state(hierarchy):
    return sorted(
        (
            line.addr,
            line.stream,
            line.way,
            line.dirty,
            line.io,
            line.consumed,
            line.lru,
            tuple(sorted(line.holders)),
        )
        for line in hierarchy.llc.resident()
    )


def mlc_state(hierarchy):
    return [
        sorted(
            (line.addr, line.stream, line.dirty, line.io, line.lru)
            for line in mlc.resident()
        )
        for mlc in hierarchy.mlcs
    ]


def sf_state(hierarchy):
    entries = []
    for bucket in hierarchy.sf._sets:
        for entry in bucket.values():
            entries.append(
                (entry.addr, tuple(sorted(entry.holders)), entry.inclusive,
                 entry.lru)
            )
    return sorted(entries)


def memory_state(memory):
    return (
        memory.total_reads,
        memory.total_writes,
        memory._window_start,
        memory._window_lines,
        memory._utilization,
    )


def full_state(hierarchy, bank):
    return {
        "llc": llc_state(hierarchy),
        "mlc": mlc_state(hierarchy),
        "sf": sf_state(hierarchy),
        "memory": memory_state(hierarchy.memory),
        "counters": {
            name: counters.snapshot()
            for name, counters in bank.streams.items()
        },
        "stream_order": list(bank.streams),
        "back_invalidations": hierarchy.sf.back_invalidations,
    }


def make_ops(rng, nops=400):
    """A randomized interleaved DMA/CPU stream with reconfig boundaries."""
    ops = []
    for _ in range(nops):
        roll = rng.random()
        core = rng.randrange(2)
        addr = rng.randrange(256)
        if roll < 0.22:
            ops.append(("burst", addr, rng.randrange(1, 40), True))
        elif roll < 0.32:
            ops.append(("burst", addr, rng.randrange(1, 40), False))
        elif roll < 0.40:
            spans = [
                (rng.randrange(256), rng.randrange(1, 24), f"dev{d}")
                for d in range(rng.randrange(1, 4))
            ]
            ops.append(("multi", spans, rng.random() < 0.8))
        elif roll < 0.55:
            run = [rng.randrange(256) for _ in range(rng.randrange(1, 48))]
            ops.append(("run", core, run, rng.random() < 0.3))
        elif roll < 0.75:
            ops.append(("read", core, addr, rng.random() < 0.3))
        elif roll < 0.85:
            ops.append(("write", core, addr))
        elif roll < 0.92:
            ops.append(("dma_read", addr))
        elif roll < 0.96:
            first = rng.randrange(3)
            ops.append(("dca_ways", tuple(range(first, first + 2))))
        else:
            first = rng.randrange(4)
            ops.append(("mask", rng.randrange(2), first, first + 3))
    return ops


def apply_ops(hierarchy, cat, ops):
    """Replay an op stream; returns summed CPU latencies (scalar order)."""
    now = 0.0
    total = 0.0
    for op in ops:
        now += 7.0
        kind = op[0]
        if kind == "burst":
            _, addr, lines, allocating = op
            hierarchy.dma_write_burst(now, addr, lines, "nic", allocating)
        elif kind == "multi":
            _, spans, allocating = op
            hierarchy.dma_write_multi(now, spans, allocating)
        elif kind == "run":
            _, core, run, io_read = op
            total += hierarchy.cpu_access_run(
                now, core, run, "cpu", io_read=io_read
            )
        elif kind == "read":
            _, core, addr, io_read = op
            total += hierarchy.cpu_access(
                now, core, addr, "cpu", io_read=io_read
            )
        elif kind == "write":
            _, core, addr = op
            total += hierarchy.cpu_access(now, core, addr, "cpu", write=True)
        elif kind == "dma_read":
            hierarchy.dma_read(now, op[1], "nic")
        elif kind == "dca_ways":
            hierarchy.llc.set_dca_ways(op[1])
        elif kind == "mask":
            _, clos, first, last = op
            cat.set_mask(clos, range(first, last + 1))
            cat.associate(0, clos)
    return total


def run_once(spec, ops, batching, **cfg_overrides):
    hierarchy, bank, cat = build_hierarchy(spec, **cfg_overrides)
    hierarchy.set_batching(batching)
    total = apply_ops(hierarchy, cat, ops)
    return full_state(hierarchy, bank), total


@pytest.mark.parametrize("platform", sorted(PLATFORMS))
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_batch_scalar_parity(platform, seed):
    spec = PLATFORMS[platform]
    salt = sorted(PLATFORMS).index(platform)
    ops = make_ops(random.Random((seed << 8) ^ salt))
    scalar_state, scalar_total = run_once(spec, ops, batching=False)
    batched_state, batched_total = run_once(spec, ops, batching=True)
    assert batched_state == scalar_state
    # Total latency: bulk multiply vs repeated add may differ in the last
    # float bit for non-integral latencies; parity is semantic, not ULP.
    assert batched_total == pytest.approx(scalar_total, rel=0, abs=1e-6)


@pytest.mark.parametrize("seed", [11, 12])
def test_parity_under_write_update_ablation(seed):
    """The ablation disables the batched allocating flow (scalar fallback);
    the end state must still match a batching-off run exactly."""
    ops = make_ops(random.Random(seed), nops=250)
    scalar_state, _ = run_once(
        SKYLAKE_SP, ops, batching=False, ddio_write_update=False
    )
    batched_state, _ = run_once(
        SKYLAKE_SP, ops, batching=True, ddio_write_update=False
    )
    assert batched_state == scalar_state


@pytest.mark.parametrize("seed", [21, 22])
def test_parity_with_self_invalidation(seed):
    ops = make_ops(random.Random(seed), nops=250)
    scalar_state, _ = run_once(
        SKYLAKE_SP, ops, batching=False, self_invalidate_consumed=True
    )
    batched_state, _ = run_once(
        SKYLAKE_SP, ops, batching=True, self_invalidate_consumed=True
    )
    assert batched_state == scalar_state


def test_parity_trace_events():
    """With the observability layer on, both modes emit the same events."""
    ops = make_ops(random.Random(99), nops=200)

    def traced(batching):
        obsv.enable()
        try:
            state, _ = run_once(SKYLAKE_SP, ops, batching=batching)
            events = [
                (e.ts, e.epoch, e.kind, e.name, e.data)
                for e in obsv.TRACER.events
            ]
        finally:
            obsv.disable()
        return state, events

    scalar_state, scalar_events = traced(False)
    batched_state, batched_events = traced(True)
    assert batched_state == scalar_state
    assert batched_events == scalar_events


def test_parity_non_lru_policy_falls_back():
    """RRIP hierarchies never take the batched allocating flow; results
    with batching on must equal batching off regardless."""
    ops = make_ops(random.Random(7), nops=250)

    def run_rrip(batching):
        bank = CounterBank()
        cat = CacheAllocation()
        memory = MemoryController(bank)
        cfg = HierarchyConfig(
            cores=2,
            llc=LlcConfig(sets=16, replacement="srrip"),
            mlc_sets=4,
            mlc_ways=2,
        )
        hierarchy = CacheHierarchy(cfg, cat, memory, bank)
        hierarchy.set_batching(batching)
        apply_ops(hierarchy, cat, ops)
        return full_state(hierarchy, bank)

    # RRIP lines have no meaningful ``lru`` tick; states still compare
    # because both runs use the same policy.
    assert run_rrip(True) == run_rrip(False)


def test_parity_full_server_with_faults(monkeypatch):
    """End-to-end: the canonical mixed server with fault injection on is
    bit-identical with batching globally enabled vs disabled."""
    from repro.experiments.harness import Server
    from repro.faults import ENV_FAULT_INTENSITY
    from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
    from repro.workloads.dpdk import DpdkWorkload
    from repro.workloads.fio import FioWorkload

    monkeypatch.setenv(ENV_FAULT_INTENSITY, "1.0")

    def run_server(batching):
        previous = batch.set_enabled(batching)
        try:
            server = Server(cores=6, seed=0xA4)
            server.add_workload(
                DpdkWorkload(
                    name="dpdk", touch=True, cores=2, packet_bytes=1024,
                    priority=PRIORITY_HIGH,
                )
            )
            server.add_workload(
                FioWorkload(
                    name="fio", block_bytes=256 * 1024, cores=2, io_depth=8,
                    priority=PRIORITY_LOW,
                )
            )
            run = server.run(epochs=3, warmup=1)
            totals = {
                name: counters.snapshot()
                for name, counters in server.counters.streams.items()
            }
            return totals, server.sim.events_executed, len(run.samples)
        finally:
            batch.set_enabled(previous)

    scalar = run_server(False)
    batched = run_server(True)
    assert batched == scalar
