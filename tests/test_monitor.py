"""Tests for the CMT-style occupancy monitor."""

from repro.rdt.monitor import OccupancyMonitor


def test_per_stream_counts(hierarchy):
    monitor = OccupancyMonitor(hierarchy.llc)
    hierarchy.dma_write(0.0, 1, "nic", allocating=True)
    hierarchy.dma_write(0.0, 2, "nic", allocating=True)
    assert monitor.per_stream() == {"nic": 2}


def test_per_way_counts(hierarchy):
    monitor = OccupancyMonitor(hierarchy.llc)
    hierarchy.dma_write(0.0, 1, "nic", allocating=True)
    by_way = monitor.per_way()
    assert sum(by_way.values()) == 1
    assert by_way[0] + by_way[1] == 1  # DCA ways


def test_footprint_in_ways(hierarchy, cat):
    monitor = OccupancyMonitor(hierarchy.llc)
    cat.set_mask(1, range(5, 7))
    cat.associate(0, 1)
    for addr in range(hierarchy.cfg.mlc_sets * hierarchy.cfg.mlc_ways + 32):
        hierarchy.cpu_access(0.0, 0, addr, "app")
    assert monitor.stream_footprint_in_ways("app", (5, 6)) > 0
    assert monitor.stream_footprint_in_ways("app", (0, 1)) == 0


def test_per_stream_and_way(hierarchy):
    monitor = OccupancyMonitor(hierarchy.llc)
    hierarchy.dma_write(0.0, 1, "nic", allocating=True)
    combos = monitor.per_stream_and_way()
    assert sum(combos.values()) == 1
    ((stream, way),) = combos.keys()
    assert stream == "nic" and way in (0, 1)
