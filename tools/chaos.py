#!/usr/bin/env python
"""Chaos sweep CLI: fault-inject the hardened A4 controller and verify its
safety properties (see :mod:`repro.faults.chaos`).

Usage::

    python tools/chaos.py                 # full sweep (0.25, 0.5, 1.0)
    python tools/chaos.py --quick         # CI smoke: fewer epochs, 2 points
    python tools/chaos.py --intensity 0.7 # one sweep point + probe
    python tools/chaos.py --epochs 120 --seed 7

Exit code 0 when every safety property holds, 1 with a diagnostic
otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 48 epochs, intensities 0.5 and 1.0",
    )
    parser.add_argument(
        "--intensity",
        type=float,
        action="append",
        help="sweep point(s) to run (repeatable; default 0.25 0.5 1.0)",
    )
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--seed", type=lambda v: int(v, 0), default=None)
    parser.add_argument(
        "--ipc-floor",
        type=float,
        default=None,
        help="minimum tolerated mean-IPC fraction of the fault-free run",
    )
    parser.add_argument(
        "--fault-tenant",
        default="",
        metavar="NAME",
        help="restrict telemetry/device faults to one tenant "
        "(the chaos mix carries the implicit 'hpw'/'lpw' tenants)",
    )
    args = parser.parse_args(argv)

    from repro.faults import chaos

    kwargs = {}
    if args.quick:
        kwargs["epochs"] = 48
        kwargs["intensities"] = (0.5, 1.0)
    if args.intensity:
        kwargs["intensities"] = tuple(args.intensity)
    if args.epochs is not None:
        kwargs["epochs"] = args.epochs
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.ipc_floor is not None:
        kwargs["ipc_floor"] = args.ipc_floor
    if args.fault_tenant:
        kwargs["fault_tenant"] = args.fault_tenant

    started = time.time()
    try:
        report = chaos.run_sweep(**kwargs)
    except Exception as exc:  # the first safety property: no crash
        print(f"FAIL: chaos run crashed: {type(exc).__name__}: {exc}")
        raise
    print(report.table())
    try:
        report.check()
    except chaos.ChaosError as exc:
        print(f"FAIL: {exc}")
        return 1
    print(f"OK: all safety properties hold ({time.time() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
