#!/usr/bin/env python3
"""Inspect JSONL traces written by ``--trace``, ``write_jsonl``, or a
worker trace spool.

Usage::

    python tools/obsv.py summary runs/trace.jsonl
    python tools/obsv.py summary runs/spool/job-abc123/         # a spool dir
    python tools/obsv.py summary worker1.jsonl worker2.jsonl    # merged
    python tools/obsv.py timeline runs/trace.jsonl --kind decision --limit 40
    python tools/obsv.py timeline runs/trace.jsonl --epoch 12
    python tools/obsv.py explain-epoch runs/trace.jsonl 12
    python tools/obsv.py explain-epoch runs/trace.jsonl --find reallocate
    python tools/obsv.py tail runs/spool/job-abc123/ -n 20
    python tools/obsv.py tail runs/spool/job-abc123/ --follow

Every command accepts one or more JSONL files *or* spool directories
(the per-worker shard directories a service worker writes); multiple
sources are merged into one stream ordered by ``(ts, pid, seq)``.

``summary`` prints event counts per kind and the controller-decision
tally.  ``timeline`` lists events (filter by kind and/or epoch).
``explain-epoch`` reconstructs the audit trail for one epoch — the
decisions the controller took and the sanitized telemetry inputs and
thresholds behind each; with ``--find ACTION`` it locates the first epoch
containing that action and explains it (exit 1 when nothing matches).
``tail`` shows the newest events; with ``--follow`` it polls a live
spool directory and streams events as worker shards land (Ctrl-C or
``--max-seconds`` to stop).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.obsv.audit import Decision  # noqa: E402
from repro.obsv.export import read_jsonl  # noqa: E402
from repro.obsv.spool import follow_spool, read_spool  # noqa: E402
from repro.obsv.tracer import KIND_DECISION, TraceEvent  # noqa: E402


def _load(sources: List[str]) -> List[TraceEvent]:
    """Events from files and/or spool directories, as one ordered stream.

    A single plain file keeps its recorded order (legacy traces have no
    pid/seq stamps to sort by); anything involving a directory or more
    than one source merges by ``(ts, pid, seq)``."""
    events: List[TraceEvent] = []
    merged = len(sources) > 1
    for source in sources:
        if os.path.isdir(source):
            events.extend(read_spool(source))
            merged = True
        else:
            events.extend(read_jsonl(source))
    if merged:
        events.sort(key=lambda e: (e.ts, e.pid, e.seq))
    return events


def _decisions(events: List[TraceEvent]) -> List[Decision]:
    """Reconstruct audit decisions from their mirrored trace events."""
    return [
        Decision(
            epoch=e.epoch,
            action=e.name,
            reason=e.data.get("reason", ""),
            inputs=e.data.get("inputs", {}) or {},
        )
        for e in events
        if e.kind == KIND_DECISION
    ]


def cmd_summary(events: List[TraceEvent], args) -> int:
    counts = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    epochs = sorted({e.epoch for e in events if e.epoch >= 0})
    pids = sorted({e.pid for e in events if e.pid})
    line = f"{len(events)} events"
    if epochs:
        line += f", epochs {epochs[0]}..{epochs[-1]}"
    if pids:
        line += f", {len(pids)} process(es): {' '.join(map(str, pids))}"
    print(line)
    for kind in sorted(counts):
        print(f"  {kind:<12} {counts[kind]:>7}")
    decisions = _decisions(events)
    if decisions:
        actions = {}
        for d in decisions:
            actions[d.action] = actions.get(d.action, 0) + 1
        print("controller decisions:")
        for action in sorted(actions):
            print(f"  {action:<16} {actions[action]:>5}")
    return 0


def _fmt_event(event: TraceEvent) -> str:
    data = " ".join(f"{k}={v}" for k, v in sorted(event.data.items()))
    wall = f" wall={event.wall * 1e3:.2f}ms" if event.wall else ""
    pid = f" pid={event.pid}" if event.pid else ""
    return (
        f"[{event.epoch:>4}] t={event.ts:>12.0f} {event.kind:<10} "
        f"{event.name:<20} {data}{wall}{pid}"
    )


def cmd_timeline(events: List[TraceEvent], args) -> int:
    selected = [
        e
        for e in events
        if (args.kind is None or e.kind == args.kind)
        and (args.epoch is None or e.epoch == args.epoch)
    ]
    shown = selected[-args.limit:] if args.limit else selected
    if len(shown) < len(selected):
        print(f"... ({len(selected) - len(shown)} earlier events elided)")
    for event in shown:
        print(_fmt_event(event))
    return 0


def cmd_explain_epoch(events: List[TraceEvent], args) -> int:
    decisions = _decisions(events)
    epoch = args.epoch
    if args.find is not None:
        matches = [d for d in decisions if d.action == args.find]
        if not matches:
            print(f"no {args.find!r} decision in this trace", file=sys.stderr)
            return 1
        epoch = matches[0].epoch
    if epoch is None:
        print("explain-epoch needs an epoch number or --find ACTION",
              file=sys.stderr)
        return 2
    at_epoch = [d for d in decisions if d.epoch == epoch]
    if not at_epoch:
        print(f"epoch {epoch}: no controller decisions recorded")
        return 1
    print(f"epoch {epoch}: {len(at_epoch)} decision(s)")
    for decision in at_epoch:
        print(decision.describe())
    # Context: the non-decision events of the same epoch.
    context = [
        e for e in events if e.epoch == epoch and e.kind != KIND_DECISION
    ]
    if context:
        print(f"-- other epoch-{epoch} events --")
        for event in context:
            print(_fmt_event(event))
    return 0


def cmd_tail(events: List[TraceEvent], args) -> int:
    """The newest events; with --follow, stream a live spool directory."""
    if args.kind is not None:
        events = [e for e in events if e.kind == args.kind]
    for event in events[-args.lines:] if args.lines else events:
        print(_fmt_event(event))
    if not args.follow:
        return 0
    spools = [s for s in args.trace if os.path.isdir(s)]
    if not spools:
        print("--follow needs a spool directory", file=sys.stderr)
        return 2
    if len(spools) > 1:
        print("--follow tails one spool directory at a time", file=sys.stderr)
        return 2
    # Already-printed shards would repeat: the follower re-reads the
    # directory from scratch.  Skip events we have shown above.
    shown = {(e.pid, e.seq) for e in events}
    try:
        for event in follow_spool(
            spools[0],
            poll_interval=args.interval,
            max_seconds=args.max_seconds,
        ):
            if (event.pid, event.seq) in shown:
                continue
            if args.kind is not None and event.kind != args.kind:
                continue
            print(_fmt_event(event), flush=True)
    except KeyboardInterrupt:
        pass
    return 0


def _add_trace_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "trace",
        nargs="+",
        help="JSONL trace file(s) and/or spool director(ies); multiple "
        "sources merge by (ts, pid, seq)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/obsv.py", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="event counts and decision tally")
    _add_trace_arg(p)
    p.set_defaults(func=cmd_summary)

    p = sub.add_parser("timeline", help="list events")
    _add_trace_arg(p)
    p.add_argument("--kind", default=None, help="only this event kind")
    p.add_argument("--epoch", type=int, default=None, help="only this epoch")
    p.add_argument(
        "--limit", type=int, default=100,
        help="show at most the last N events (0 = all)",
    )
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser(
        "explain-epoch",
        help="the controller decisions of one epoch, with their inputs",
    )
    _add_trace_arg(p)
    p.add_argument("epoch", nargs="?", type=int, default=None)
    p.add_argument(
        "--find",
        metavar="ACTION",
        default=None,
        help="locate the first epoch with this decision action "
        "(e.g. reallocate, degraded_enter) and explain it",
    )
    p.set_defaults(func=cmd_explain_epoch)

    p = sub.add_parser(
        "tail", help="newest events; --follow streams a live spool"
    )
    _add_trace_arg(p)
    p.add_argument(
        "-n", "--lines", type=int, default=20,
        help="show the last N events first (0 = all)",
    )
    p.add_argument("--kind", default=None, help="only this event kind")
    p.add_argument(
        "--follow", action="store_true",
        help="keep polling a spool directory for new shards",
    )
    p.add_argument(
        "--interval", type=float, default=0.25,
        help="poll interval in seconds for --follow",
    )
    p.add_argument(
        "--max-seconds", type=float, default=None,
        help="stop following after this many seconds (default: forever)",
    )
    p.set_defaults(func=cmd_tail)

    args = parser.parse_args(argv)
    # argparse hands every positional to the greedy ``trace`` list, so
    # ``explain-epoch trace.jsonl 12`` parks the epoch there — reclaim a
    # trailing integer that is not an existing path.
    if (
        getattr(args, "epoch", None) is None
        and args.command == "explain-epoch"
        and len(args.trace) > 1
        and args.trace[-1].lstrip("-").isdigit()
        and not os.path.exists(args.trace[-1])
    ):
        args.epoch = int(args.trace.pop())
    try:
        events = _load(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    return args.func(events, args)


if __name__ == "__main__":
    sys.exit(main())
