#!/usr/bin/env python3
"""Inspect a JSONL trace written by ``--trace`` (or ``write_jsonl``).

Usage::

    python tools/obsv.py summary runs/trace.jsonl
    python tools/obsv.py timeline runs/trace.jsonl --kind decision --limit 40
    python tools/obsv.py timeline runs/trace.jsonl --epoch 12
    python tools/obsv.py explain-epoch runs/trace.jsonl 12
    python tools/obsv.py explain-epoch runs/trace.jsonl --find reallocate

``summary`` prints event counts per kind and the controller-decision
tally.  ``timeline`` lists events (filter by kind and/or epoch).
``explain-epoch`` reconstructs the audit trail for one epoch — the
decisions the controller took and the sanitized telemetry inputs and
thresholds behind each; with ``--find ACTION`` it locates the first epoch
containing that action and explains it (exit 1 when nothing matches).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.obsv.audit import Decision  # noqa: E402
from repro.obsv.export import read_jsonl  # noqa: E402
from repro.obsv.tracer import KIND_DECISION, TraceEvent  # noqa: E402


def _decisions(events: List[TraceEvent]) -> List[Decision]:
    """Reconstruct audit decisions from their mirrored trace events."""
    return [
        Decision(
            epoch=e.epoch,
            action=e.name,
            reason=e.data.get("reason", ""),
            inputs=e.data.get("inputs", {}) or {},
        )
        for e in events
        if e.kind == KIND_DECISION
    ]


def cmd_summary(events: List[TraceEvent], args) -> int:
    counts = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    epochs = sorted({e.epoch for e in events if e.epoch >= 0})
    print(f"{len(events)} events"
          + (f", epochs {epochs[0]}..{epochs[-1]}" if epochs else ""))
    for kind in sorted(counts):
        print(f"  {kind:<12} {counts[kind]:>7}")
    decisions = _decisions(events)
    if decisions:
        actions = {}
        for d in decisions:
            actions[d.action] = actions.get(d.action, 0) + 1
        print("controller decisions:")
        for action in sorted(actions):
            print(f"  {action:<16} {actions[action]:>5}")
    return 0


def _fmt_event(event: TraceEvent) -> str:
    data = " ".join(f"{k}={v}" for k, v in sorted(event.data.items()))
    wall = f" wall={event.wall * 1e3:.2f}ms" if event.wall else ""
    return (
        f"[{event.epoch:>4}] t={event.ts:>12.0f} {event.kind:<10} "
        f"{event.name:<20} {data}{wall}"
    )


def cmd_timeline(events: List[TraceEvent], args) -> int:
    selected = [
        e
        for e in events
        if (args.kind is None or e.kind == args.kind)
        and (args.epoch is None or e.epoch == args.epoch)
    ]
    shown = selected[-args.limit:] if args.limit else selected
    if len(shown) < len(selected):
        print(f"... ({len(selected) - len(shown)} earlier events elided)")
    for event in shown:
        print(_fmt_event(event))
    return 0


def cmd_explain_epoch(events: List[TraceEvent], args) -> int:
    decisions = _decisions(events)
    epoch = args.epoch
    if args.find is not None:
        matches = [d for d in decisions if d.action == args.find]
        if not matches:
            print(f"no {args.find!r} decision in this trace", file=sys.stderr)
            return 1
        epoch = matches[0].epoch
    if epoch is None:
        print("explain-epoch needs an epoch number or --find ACTION",
              file=sys.stderr)
        return 2
    at_epoch = [d for d in decisions if d.epoch == epoch]
    if not at_epoch:
        print(f"epoch {epoch}: no controller decisions recorded")
        return 1
    print(f"epoch {epoch}: {len(at_epoch)} decision(s)")
    for decision in at_epoch:
        print(decision.describe())
    # Context: the non-decision events of the same epoch.
    context = [
        e for e in events if e.epoch == epoch and e.kind != KIND_DECISION
    ]
    if context:
        print(f"-- other epoch-{epoch} events --")
        for event in context:
            print(_fmt_event(event))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="tools/obsv.py", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="event counts and decision tally")
    p.add_argument("trace", help="JSONL trace file")
    p.set_defaults(func=cmd_summary)

    p = sub.add_parser("timeline", help="list events")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("--kind", default=None, help="only this event kind")
    p.add_argument("--epoch", type=int, default=None, help="only this epoch")
    p.add_argument(
        "--limit", type=int, default=100,
        help="show at most the last N events (0 = all)",
    )
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser(
        "explain-epoch",
        help="the controller decisions of one epoch, with their inputs",
    )
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument("epoch", nargs="?", type=int, default=None)
    p.add_argument(
        "--find",
        metavar="ACTION",
        default=None,
        help="locate the first epoch with this decision action "
        "(e.g. reallocate, degraded_enter) and explain it",
    )
    p.set_defaults(func=cmd_explain_epoch)

    args = parser.parse_args(argv)
    try:
        events = read_jsonl(args.trace)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    return args.func(events, args)


if __name__ == "__main__":
    sys.exit(main())
