#!/usr/bin/env python
"""Operator CLI for the crash-safe simulation job service.

Subcommands::

    python tools/service.py submit fig11 --set epochs=12 --set warmup=2
    python tools/service.py status [--job ID]
    python tools/service.py watch [--interval 1.0]
    python tools/service.py drain [--max-jobs N] [--wall-limit SECONDS]
    python tools/service.py metrics [--out FILE] [--slo]

State lives under ``--root`` (default ``.repro-service/``): ``jobs.db``
is the durable SQLite store, ``results/`` holds pickled figure results
named by content key, ``ckpt/`` holds per-job checkpoint namespaces,
``spool/`` holds per-job worker trace shards (the flight recorder's
source).  ``submit`` is cheap and durable — the job survives process
death and a later ``drain`` (from any process) picks it up; submitting
the same figure with the same arguments joins the existing job instead
of queueing a duplicate.  ``drain`` runs a supervisor in this process:
workers are spawned per job, heartbeat-watched, traced into the spool,
and retried from their newest checkpoint on unclean death (leaving a
``<result>.crash.json`` flight-recorder report behind).  ``watch`` is a
live table — state, per-epoch progress %, events/s, ETA, heartbeat age —
fed by the progress stream workers push through their heartbeat thread.
``metrics`` renders the service SLO metrics (queue depth, queue-wait and
run-duration histograms, retry/shed/crash counters) as Prometheus text;
``--slo`` prints the human p50/p95/p99 report instead.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for path in (str(ROOT / "src"),):
    if path not in sys.path:
        sys.path.insert(0, path)


def _parse_set(pairs):
    """``--set key=value`` arguments into kwargs (values parse as JSON
    where possible, else stay strings: ``epochs=12`` -> int,
    ``schemes='["a4"]'`` -> list, ``scheme=a4`` -> str)."""
    kwargs = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"--set needs key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        try:
            kwargs[key] = json.loads(raw)
        except ValueError:
            kwargs[key] = raw
    return kwargs


def _open_store(args, **kwargs):
    from repro.service.store import JobStore

    root = Path(args.root)
    return JobStore(root / "jobs.db", **kwargs)


def _fmt_job(job) -> str:
    extra = ""
    if job.state == "DONE":
        extra = f" digest={job.result_digest[:12]} -> {job.result_path}"
    elif job.error:
        extra = f" [{job.category}] {job.error.splitlines()[0][:60]}"
    return (
        f"job {job.id} {job.state:7s} key={job.key[:12]} "
        f"attempts={job.attempts}/{job.max_attempts} "
        f"resumes={job.resumes} submits={job.submits}"
        f"{extra}"
    )


def cmd_submit(args) -> int:
    from repro.experiments.figures import REGISTRY

    if args.figure not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        print(f"unknown figure {args.figure!r}; known: {known}")
        return 2
    kwargs = _parse_set(args.set)
    key = REGISTRY[args.figure].cache_key(**kwargs)
    from repro.service.store import AdmissionError

    with _open_store(args, queue_limit=args.queue_limit) as store:
        try:
            outcome = store.submit(
                {"figure": args.figure, "kwargs": kwargs},
                key,
                max_attempts=args.max_attempts,
            )
        except AdmissionError as exc:
            print(f"shed: {exc.reason}")
            return 3
        verb = "joined" if outcome.deduped else "queued"
        print(f"{verb}: {_fmt_job(outcome.job)}")
    return 0


def cmd_status(args) -> int:
    with _open_store(args) as store:
        if args.job is not None:
            job = store.job(args.job)
            print(_fmt_job(job))
            if job.checkpoint_epoch is not None:
                print(f"  resumable from epoch {job.checkpoint_epoch}")
            return 0
        counts = store.state_counts()
        print(
            "states: "
            + "  ".join(f"{state}={n}" for state, n in counts.items())
        )
        print(f"queue depth: {store.queue_depth()}")
        counters = store.counters()
        print(
            "counters: "
            + "  ".join(f"{name}={value}" for name, value in counters.items())
        )
        for job in store.jobs():
            print(_fmt_job(job))
    return 0


def _eta_str(seconds) -> str:
    if seconds is None:
        return "-"
    seconds = max(0.0, float(seconds))
    if seconds >= 90:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _rate_str(rate) -> str:
    if not rate:
        return "-"
    rate = float(rate)
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M ev/s"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k ev/s"
    return f"{rate:.0f} ev/s"


def _watch_rows(store) -> list:
    """One table row per job: id, state, progress, rate, ETA, heartbeat
    age — the live view of the progress stream workers push."""
    now = time.time()
    rows = []
    for job in store.jobs():
        fraction = job.progress_fraction
        if fraction is not None:
            progress = (
                f"{job.progress_done}/{job.progress_total} "
                f"{fraction * 100:3.0f}%"
            )
        elif job.state == "DONE":
            progress = "100%"
        else:
            progress = "-"
        if job.state == "RUNNING" and job.heartbeat is not None:
            beat = f"{max(0.0, now - job.heartbeat):.1f}s"
        else:
            beat = "-"
        rows.append(
            (
                str(job.id),
                job.state,
                progress,
                _rate_str(job.progress_rate) if job.state == "RUNNING" else "-",
                _eta_str(job.progress_eta) if job.state == "RUNNING" else "-",
                beat,
            )
        )
    return rows


def _render_table(rows) -> str:
    header = ("job", "state", "progress", "rate", "eta", "hb-age")
    table = [header] + rows
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in table
    ]
    return "\n".join(lines)


def cmd_watch(args) -> int:
    with _open_store(args) as store:
        last = None
        while True:
            counts = store.state_counts()
            rows = _watch_rows(store)
            rendered = _render_table(rows) if rows else "empty"
            if rendered != last:
                print(f"[{time.strftime('%H:%M:%S')}]")
                print(rendered, flush=True)
                last = rendered
            if not (counts["QUEUED"] or counts["RUNNING"] or counts["FAILED"]):
                return 0
            if args.once:
                return 0
            time.sleep(args.interval)


def cmd_drain(args) -> int:
    from repro.service.supervisor import Supervisor, SupervisorConfig

    root = Path(args.root)
    with _open_store(args) as store:
        config = SupervisorConfig(
            results_dir=str(root / "results"),
            checkpoint_root=str(root / "ckpt"),
            heartbeat_timeout=args.heartbeat_timeout,
            spool_root=None if args.no_spool else str(root / "spool"),
        )
        supervisor = Supervisor(store, config)
        report = supervisor.drain(
            max_jobs=args.max_jobs, wall_limit=args.wall_limit
        )
        print(f"drain: {report.summary()}")
        dead = store.jobs("DEAD")
        for job in dead:
            print(_fmt_job(job))
        return 1 if dead else 0


def cmd_metrics(args) -> int:
    from repro.obsv.export import render_prometheus
    from repro.obsv.metrics import MetricsRegistry, collect_service

    registry = MetricsRegistry()
    with _open_store(args) as store:
        collect_service(store, registry)
    if args.slo:
        for name, label in (
            ("repro_service_queue_wait_seconds", "queue wait"),
            ("repro_service_run_duration_seconds", "run duration"),
        ):
            hist = registry.histogram(name)
            quantiles = "  ".join(
                f"p{int(q * 100)}={hist.quantile(q):.3f}s"
                for q in (0.5, 0.95, 0.99)
            )
            print(f"{label:<13} n={hist.count:<5} {quantiles}")
        return 0
    text = render_prometheus(registry)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=".repro-service",
        help="service state directory (default: .repro-service)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("submit", help="queue (or join) one figure job")
    p.add_argument("figure", help="registry figure id, e.g. fig11")
    p.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="runner kwarg (value parsed as JSON when possible)",
    )
    p.add_argument("--max-attempts", type=int, default=3)
    p.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission control: shed submits beyond this live depth",
    )
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status", help="show queue state and counters")
    p.add_argument("--job", type=int, help="show one job in detail")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser(
        "watch", help="live job table (progress, rate, ETA, heartbeat age)"
    )
    p.add_argument("--interval", type=float, default=1.0)
    p.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (scripting/CI)",
    )
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("drain", help="run a supervisor until settled")
    p.add_argument("--max-jobs", type=int, default=None)
    p.add_argument("--wall-limit", type=float, default=None)
    p.add_argument("--heartbeat-timeout", type=float, default=60.0)
    p.add_argument(
        "--no-spool", action="store_true",
        help="disable worker trace spooling and the flight recorder",
    )
    p.set_defaults(fn=cmd_drain)

    p = sub.add_parser(
        "metrics", help="service SLO metrics as Prometheus text"
    )
    p.add_argument("--out", default=None, help="write to a file instead")
    p.add_argument(
        "--slo", action="store_true",
        help="human p50/p95/p99 queue-wait and run-duration report",
    )
    p.set_defaults(fn=cmd_metrics)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
