#!/usr/bin/env python3
"""CI smoke test for the observability layer.

Two stages, both in-process:

1. A short faulted ``fig11`` run with ``--trace`` / ``--chrome-trace`` /
   ``--metrics-out``: the trace must be non-empty and round-trip through
   the JSONL reader, the audit trail must explain at least one A4
   reallocation (with the telemetry inputs behind it), the Chrome trace
   must validate, and the Prometheus text must parse.
2. The chaos watchdog probe at intensity 1.0: the controller must enter
   degraded mode, and ``tools/obsv.py explain-epoch --find degraded_enter``
   against the exported trace must reproduce the decision's inputs.

Exit 0 on success; raises (non-zero exit) on the first failed check.

Usage::

    python tools/obsv_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro import obsv  # noqa: E402
from repro.obsv import export  # noqa: E402


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)
    print(f"  ok: {message}")


def explain(trace_path: str, action: str) -> str:
    """Run the obsv CLI as a subprocess; return its stdout."""
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(ROOT, "tools", "obsv.py"),
            "explain-epoch",
            trace_path,
            "--find",
            action,
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    check(
        proc.returncode == 0,
        f"tools/obsv.py explain-epoch --find {action} exits 0",
    )
    return proc.stdout


def stage_figure(tmp: str) -> None:
    """Faulted fig11 with every export flag on."""
    print("stage 1: faulted fig11 with --trace / --chrome-trace / --metrics-out")
    from repro.experiments.__main__ import main as experiments_main

    trace_path = os.path.join(tmp, "trace.jsonl")
    chrome_path = os.path.join(tmp, "trace.chrome.json")
    metrics_path = os.path.join(tmp, "metrics.prom")
    status = experiments_main(
        [
            "fig11",
            "--quick",
            "--no-cache",
            "--fault-intensity",
            "1.0",
            "--trace",
            trace_path,
            "--chrome-trace",
            chrome_path,
            "--metrics-out",
            metrics_path,
        ]
    )
    check(status == 0, "fig11 run exits 0")

    events = export.read_jsonl(trace_path)
    check(len(events) > 0, f"trace is non-empty ({len(events)} events)")
    kinds = {e.kind for e in events}
    for kind in (obsv.KIND_EPOCH, obsv.KIND_MASK, obsv.KIND_DECISION,
                 obsv.KIND_FAULT):
        check(kind in kinds, f"trace contains {kind!r} events")

    reallocs = [
        e
        for e in events
        if e.kind == obsv.KIND_DECISION
        and e.name == "reallocate"
        and e.data.get("inputs")
    ]
    check(
        len(reallocs) >= 1,
        f"audit records >=1 reallocation with inputs ({len(reallocs)} found)",
    )

    out = explain(trace_path, "reallocate")
    check("[reallocate]" in out, "explain-epoch output names the reallocation")
    check(
        any(key in out for key in ("workloads:", "triggers:", "crossed:")),
        "explain-epoch output reproduces the reallocation inputs",
    )

    import json

    with open(chrome_path) as handle:
        export.validate_chrome_trace(json.load(handle))
    print("  ok: chrome trace validates")

    with open(metrics_path) as handle:
        series = export.parse_prometheus(handle.read())
    check(len(series) > 0, f"prometheus text parses ({len(series)} series)")
    check(
        any(name.startswith("repro_trace_events") for name in series),
        "prometheus export includes repro_trace_events",
    )


def stage_degraded(tmp: str) -> None:
    """Chaos watchdog probe: degraded-mode entry must be auditable."""
    print("stage 2: watchdog probe at intensity 1.0 (degraded-mode audit)")
    from repro.faults.chaos import fsm_policy, run_chaos

    obsv.enable()  # fresh tracer + audit trail for this stage
    try:
        result = run_chaos(1.0, epochs=80, policy=fsm_policy(), label="probe")
        check(
            result.robustness.get("degraded_entries", 0) >= 1,
            "probe run trips the oscillation watchdog",
        )
        entries = [
            d for d in obsv.AUDIT.decisions("degraded_enter") if d.inputs
        ]
        check(
            len(entries) >= 1,
            f"audit records >=1 degraded_enter with inputs ({len(entries)})",
        )
        trace_path = os.path.join(tmp, "probe.jsonl")
        export.write_jsonl(obsv.TRACER.events, trace_path)
        out = explain(trace_path, "degraded_enter")
        check("[degraded_enter]" in out, "explain-epoch names the degraded entry")
        check(
            "watchdog:" in out,
            "explain-epoch reproduces the degraded-mode inputs",
        )
    finally:
        obsv.disable()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="obsv-smoke-") as tmp:
        stage_figure(tmp)
        stage_degraded(tmp)
    print("obsv smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
