#!/usr/bin/env python
"""CI smoke test for the content-addressed run cache.

Runs a small figure twice against a fresh temp cache directory and asserts:

1. the cold run simulates (misses + stores, no hits for the figure key);
2. the warm run is a cache hit that constructs no ``Simulator`` at all;
3. the two results are identical objects value-wise.

Exit code 0 on success, 1 with a diagnostic on any violation.  Usage::

    python tools/cache_smoke.py [figure_id] [epochs]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    figure_id = argv[0] if argv else "fig8b"
    epochs = int(argv[1]) if len(argv) > 1 else 3

    from repro.experiments import runcache
    from repro.experiments.figures import REGISTRY
    from repro.sim import engine as engine_mod

    if figure_id not in REGISTRY:
        print(f"FAIL: unknown figure {figure_id!r}; have {sorted(REGISTRY)}")
        return 1

    with tempfile.TemporaryDirectory(prefix="repro-cache-smoke-") as tmp:
        runcache.set_cache(runcache.RunCache(root=Path(tmp)))
        cache = runcache.get_cache()
        runner = REGISTRY[figure_id]

        cold = runner(epochs=epochs, seed=0xA4)
        if cache.stats.stores < 1 or cache.stats.hits != 0:
            print(f"FAIL: cold run should store and not hit: {cache.stats}")
            return 1

        constructed = []
        original_init = engine_mod.Simulator.__init__
        engine_mod.Simulator.__init__ = lambda self: (
            constructed.append(self),
            original_init(self),
        )[-1]
        try:
            warm = runner(epochs=epochs, seed=0xA4)
        finally:
            engine_mod.Simulator.__init__ = original_init

        if constructed:
            print(
                f"FAIL: warm run built {len(constructed)} Simulator(s); "
                "expected pure cache replay"
            )
            return 1
        if cache.stats.hits < 1:
            print(f"FAIL: warm run was not a cache hit: {cache.stats}")
            return 1
        if warm != cold:
            print("FAIL: warm result differs from cold result")
            print(f"  cold: {cold}")
            print(f"  warm: {warm}")
            return 1

        print(
            f"OK: {figure_id} (epochs={epochs}) warm replay identical, "
            f"zero simulation work [{cache.stats.summary()}]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
