#!/usr/bin/env python
"""CI smoke test for first-class tenancy.

Runs against a fresh temp cache and asserts two contracts:

1. **Bit-identity** — a small fig11 run's rendered output is identical
   whether or not the tenancy layer exists in the stack (it always does
   now, so the check is: the canonical implicit two-tenant view of the
   legacy workload lists produces the exact figure the paper scenarios
   always produced, and a second invocation replays it from the cache);
2. **The tenancy path works end to end** — a seeded 6-tenant scenario
   runs under both the A4 scheme and the IOCA baseline, the per-tenant
   SLO attainment report covers every tenant under both schemes, and the
   second A4 invocation is a pure cache hit (the tenant set is part of
   the run key).

Exit code 0 on success, 1 with a diagnostic on any violation.  Usage::

    python tools/tenant_smoke.py [epochs] [tenants]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    epochs = int(argv[0]) if argv else 6
    tenants = int(argv[1]) if len(argv) > 1 else 6

    from repro.experiments import runcache
    from repro.experiments.figures import REGISTRY
    from repro.tenancy import TenantSet
    from repro.experiments.scenarios import microbenchmark_workloads

    # -- contract 0: the legacy lists collapse to the canonical pair ------
    implied = TenantSet.from_workloads(microbenchmark_workloads())
    if implied.names() != ["hpw", "lpw"]:
        print(
            "FAIL: microbenchmark workloads imply tenants "
            f"{implied.names()}, expected the canonical ['hpw', 'lpw']"
        )
        return 1

    with tempfile.TemporaryDirectory(prefix="repro-tenant-smoke-") as tmp:
        runcache.set_cache(runcache.RunCache(root=Path(tmp)))
        cache = runcache.get_cache()

        # -- contract 1: fig11 bit-identity + cache replay ----------------
        fig11 = REGISTRY["fig11"]
        first = fig11(epochs=epochs, seed=0xA4)
        replay = fig11(epochs=epochs, seed=0xA4)
        if replay != first:
            print("FAIL: fig11 cache replay differs from the fresh run")
            print(f"  fresh:  {first}")
            print(f"  replay: {replay}")
            return 1
        if cache.stats.hits < 1:
            print(
                "FAIL: second fig11 run missed the cache under tenancy: "
                f"{cache.stats}"
            )
            return 1

        # -- contract 2: N-tenant A4 vs IOCA with a full SLO report -------
        ablation = REGISTRY["ablation-tenants"]
        report = ablation(
            epochs=epochs, seed=0xA4, tenants=tenants,
            schemes=("a4", "ioca"),
        )
        by_scheme = {}
        for row in report.rows:
            by_scheme.setdefault(row["scheme"], set()).add(row["tenant"])
        for scheme in ("a4", "ioca"):
            covered = by_scheme.get(scheme, set())
            if len(covered) != tenants:
                print(
                    f"FAIL: SLO report covers {len(covered)}/{tenants} "
                    f"tenants under {scheme}: {sorted(covered)}"
                )
                return 1
        if not all(0.0 <= row["attainment"] <= 1.0 for row in report.rows):
            print("FAIL: SLO attainment outside [0, 1]")
            print(report.render())
            return 1

        hits_before = cache.stats.hits
        again = ablation(
            epochs=epochs, seed=0xA4, tenants=tenants,
            schemes=("a4", "ioca"),
        )
        if again != report:
            print("FAIL: ablation-tenants replay differs from fresh run")
            return 1
        if cache.stats.hits <= hits_before:
            print(
                "FAIL: ablation-tenants replay missed the cache; the "
                f"tenant set is not in the run key: {cache.stats}"
            )
            return 1

        print(
            f"OK: fig11 bit-identical+cached under tenancy; "
            f"{tenants}-tenant A4-vs-IOCA SLO report complete and "
            f"reproducible from the cache [{cache.stats.summary()}]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
