#!/usr/bin/env python
"""CI smoke test for the swappable PlatformSpec.

Runs a tiny figure three ways against a fresh temp cache and asserts:

1. running it with an explicit ``platform="skylake-sp"`` is bit-identical
   to running it with no platform argument (the default spec IS the
   skylake-sp preset, so the refactor cannot have drifted);
2. both spellings resolve to the *same* run-cache entry (the explicit
   default must not double-simulate);
3. an alternate preset completes end to end, lands in the cache under a
   *different* key, and differs from the skylake result (the spec is
   actually load-bearing, not decorative).

Exit code 0 on success, 1 with a diagnostic on any violation.  Usage::

    python tools/platform_smoke.py [figure_id] [epochs] [alternate]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    figure_id = argv[0] if argv else "fig11"
    epochs = int(argv[1]) if len(argv) > 1 else 6
    alternate = argv[2] if len(argv) > 2 else "icelake-sp"

    from repro.experiments import runcache
    from repro.experiments.figures import REGISTRY
    from repro.experiments.sweep import _accepts_platform
    from repro.platform import get_platform

    if figure_id not in REGISTRY:
        print(f"FAIL: unknown figure {figure_id!r}; have {sorted(REGISTRY)}")
        return 1
    runner = REGISTRY[figure_id]
    if not _accepts_platform(runner):
        print(f"FAIL: {figure_id} does not take a platform parameter")
        return 1
    get_platform(alternate)  # validate the name before simulating anything

    with tempfile.TemporaryDirectory(prefix="repro-platform-smoke-") as tmp:
        runcache.set_cache(runcache.RunCache(root=Path(tmp)))
        cache = runcache.get_cache()

        default = runner(epochs=epochs, seed=0xA4)
        explicit = runner(epochs=epochs, seed=0xA4, platform="skylake-sp")
        if explicit != default:
            print(
                "FAIL: platform='skylake-sp' is not bit-identical to the "
                "default run"
            )
            print(f"  default:  {default}")
            print(f"  explicit: {explicit}")
            return 1
        if cache.stats.hits < 1:
            print(
                "FAIL: explicit skylake-sp run missed the cache; the "
                f"default and explicit keys diverged: {cache.stats}"
            )
            return 1

        stores_before_alt = cache.stats.stores
        alt = runner(epochs=epochs, seed=0xA4, platform=alternate)
        if cache.stats.stores <= stores_before_alt:
            print(
                f"FAIL: {alternate} run stored nothing new; its key "
                f"collided with skylake-sp: {cache.stats}"
            )
            return 1
        if alt == default:
            print(
                f"FAIL: {alternate} result is identical to skylake-sp; "
                "the platform spec is not reaching the simulation"
            )
            return 1
        if len(alt.rows) != len(default.rows):
            print(
                f"FAIL: {alternate} run is incomplete: "
                f"{len(alt.rows)} rows vs {len(default.rows)}"
            )
            return 1

        print(
            f"OK: {figure_id} (epochs={epochs}) bit-identical on "
            f"skylake-sp, distinct+complete on {alternate} "
            f"[{cache.stats.summary()}]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
