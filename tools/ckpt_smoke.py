#!/usr/bin/env python
"""CI smoke test for checkpoint/restore and interval sampling.

Three checks, each fatal on violation:

1. **Round-trip bit-identity** — run the canonical mixed server N epochs,
   snapshot through a real on-disk :class:`CheckpointStore`, restore from
   the store, continue M epochs, and compare clock / event count /
   per-stream counters against an uninterrupted N+M run.
2. **Store durability** — a corrupted blob is a clean miss (evicted, not
   restored), and ``latest`` falls back to the older intact checkpoint.
3. **Sampled-run sanity** — a sampled long-horizon run skips epochs,
   stays within its reported error budget, and its primary-stream
   aggregates land within 2% of the exact run's.

Exit code 0 on success, 1 with a diagnostic on any violation.  Usage::

    python tools/ckpt_smoke.py [epochs_before] [epochs_after]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for path in (str(ROOT / "src"), str(ROOT / "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)


def _fingerprint(server):
    streams = {}
    for name in sorted(server.counters.streams):
        stream = server.counters.stream(name)
        streams[name] = repr(
            vars(stream) if hasattr(stream, "__dict__") else stream
        )
    return (
        server.sim.now,
        server.sim.events_executed,
        server.epochs_completed,
        streams,
    )


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    before = int(argv[0]) if argv else 3
    after = int(argv[1]) if len(argv) > 1 else 3

    from perf.scenarios import build_canonical
    from repro.sim import checkpoint
    from repro.sim.checkpoint import CheckpointStore, checkpoint_key
    from repro.sim.sampling import SamplingPlan

    with tempfile.TemporaryDirectory(prefix="repro-ckpt-smoke-") as tmp:
        store = CheckpointStore(Path(tmp) / "ckpt")

        # 1. round-trip through the on-disk store
        first = build_canonical(0xA4)
        first.run(epochs=before, warmup=1)
        early = checkpoint.snapshot(first)
        store.save("smoke", early)
        first.run(epochs=1, warmup=0)
        store.save("smoke", checkpoint.snapshot(first))

        state = store.load("smoke", before)
        if state is None:
            print("FAIL: stored checkpoint did not load back")
            return 1
        resumed = checkpoint.restore(state)
        resumed.run(epochs=after, warmup=0)

        continuous = build_canonical(0xA4)
        continuous.run(epochs=before + after, warmup=1)
        if _fingerprint(resumed) != _fingerprint(continuous):
            print(
                "FAIL: restored run diverged from the uninterrupted run\n"
                f"  resumed:    {_fingerprint(resumed)[:3]}\n"
                f"  continuous: {_fingerprint(continuous)[:3]}"
            )
            return 1
        print(
            f"OK: restore@{before} + {after} epochs == "
            f"uninterrupted {before + after} "
            f"({len(early.payload)} payload bytes)"
        )

        # 2. corruption is a clean miss with fallback
        newest = checkpoint_key("smoke", before + 1)
        store._blob_path(newest).write_bytes(b"garbage")
        if store.load("smoke", before + 1) is not None:
            print("FAIL: corrupt checkpoint blob restored")
            return 1
        fallback = store.latest("smoke")
        if fallback is None or fallback.epoch != before:
            print("FAIL: latest() did not fall back past the corrupt blob")
            return 1
        print("OK: corrupt blob evicted; latest() fell back to "
              f"epoch {fallback.epoch}")

    # 3. sampled run sanity
    epochs = 60
    plan = SamplingPlan(max_skip=16, error_budget=0.02)
    exact = build_canonical(0xA4).run(epochs=epochs, warmup=5)
    sampled = build_canonical(0xA4).run(epochs=epochs, warmup=5, sampling=plan)
    report = sampled.sampling
    if report is None or report.skipped_epochs == 0:
        print("FAIL: sampled run did not skip any epochs")
        return 1
    worst = 0.0
    for name in exact.stream_names():
        exact_agg, sampled_agg = exact.aggregate(name), sampled.aggregate(name)
        for metric in ("ipc", "llc_hit_rate", "throughput"):
            reference = getattr(exact_agg, metric)
            if abs(reference) < 0.01:  # near-zero denominator: noise
                continue
            estimate = getattr(sampled_agg, metric)
            worst = max(worst, abs(estimate - reference) / abs(reference))
    if worst > plan.error_budget:
        print(f"FAIL: sampled error {worst:.4f} > budget "
              f"{plan.error_budget:.2f}")
        return 1
    print(
        f"OK: sampled {report.detailed_epochs} detailed + "
        f"{report.skipped_epochs} synthesized of {epochs} epochs, "
        f"true error {100 * worst:.2f}% <= "
        f"{100 * plan.error_budget:.0f}% budget"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
