#!/usr/bin/env python
"""CI smoke test for the crash-safe job service.

Five checks, each fatal on violation:

1. **Kill-resume bit-identity** — submit a one-cell ``fig11`` job with a
   3-epoch checkpoint cadence, SIGKILL the worker once after its first
   checkpoint lands, and require the job to finish DONE on attempt 2
   with at least one checkpoint resume — and with a result digest equal
   to an uninterrupted in-process run (run cache disabled on both sides,
   so the equality is earned by simulation resume, not by a cache hit).
   The worker runs with trace spooling *on*, so the equality also proves
   cross-process tracing does not perturb results.
2. **Flight recorder** — the SIGKILLed attempt must leave a
   ``<result>.crash.json`` whose salvaged event tail is exactly the
   victim's last spooled events, and the finished row must carry live
   progress at 100%.
3. **Orphan recovery** — a job left RUNNING by a process that no longer
   exists is re-queued (checkpoint pointer intact) when the store is
   next opened.
4. **Dedup fan-out** — resubmitting the finished job's spec joins the
   existing row (no new work) and reports the shared result.
5. **Admission control** — a submit beyond the queue limit is shed with
   a reason, and the shed is durably counted.

Exit code 0 on success, 1 with a diagnostic on any violation.  Usage::

    python tools/service_smoke.py
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for path in (str(ROOT / "src"),):
    if path not in sys.path:
        sys.path.insert(0, path)

SPEC_KWARGS = {
    "epochs": 12,
    "warmup": 2,
    "schemes": ["a4"],
    "packet_sizes": [64],
    "checkpoint_every": 3,
}


def main() -> int:
    # Both the service worker and the baseline run with the cache off:
    # the bit-identity below must come from checkpoint resume.
    os.environ["REPRO_CACHE_DISABLE"] = "1"

    from repro.experiments.figures import REGISTRY
    from repro.faults.service_chaos import KillWorker
    from repro.obsv.flight import crash_report_path, read_crash_report
    from repro.obsv.spool import read_pid_tail
    from repro.service.retry import FAST_POLICY
    from repro.service.store import AdmissionError, JobStore
    from repro.service.supervisor import Supervisor, SupervisorConfig

    figure = REGISTRY["fig11"]
    key = figure.cache_key(**SPEC_KWARGS)
    spec = {"figure": "fig11", "kwargs": SPEC_KWARGS}

    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        db_path = Path(tmp) / "jobs.db"
        store = JobStore(db_path)
        job = store.submit(spec, key).job
        chaos = KillWorker(budget=1, after_checkpoint=True)
        supervisor = Supervisor(
            store,
            SupervisorConfig(
                results_dir=str(Path(tmp) / "results"),
                checkpoint_root=str(Path(tmp) / "ckpt"),
                retry=FAST_POLICY,
                worker_env={"REPRO_CACHE_DISABLE": "1"},
                spool_root=str(Path(tmp) / "spool"),
            ),
            chaos=chaos,
        )
        report = supervisor.drain()

        row = store.job(job.id)
        if chaos.kills != 1:
            print(f"FAIL: chaos killed {chaos.kills} workers, wanted 1")
            return 1
        if row.state != "DONE":
            print(f"FAIL: job finished {row.state}, wanted DONE "
                  f"({row.category}: {row.error})")
            return 1
        if row.attempts != 2:
            print(f"FAIL: job took {row.attempts} attempts, wanted 2 "
                  "(one kill, one resume)")
            return 1
        if row.resumes < 1:
            print("FAIL: retry did not resume from a checkpoint")
            return 1

        baseline = figure(**SPEC_KWARGS)
        digest = hashlib.sha256(
            pickle.dumps(baseline, protocol=pickle.HIGHEST_PROTOCOL)
        ).hexdigest()
        if digest != row.result_digest:
            print(
                "FAIL: resumed result diverged from uninterrupted run\n"
                f"  service:  {row.result_digest}\n"
                f"  baseline: {digest}"
            )
            return 1
        print(
            f"OK: kill-resume bit-identity ({report.summary()}; "
            f"digest {digest[:12]})"
        )

        # 2. flight recorder: the SIGKILLed attempt must have left a
        # crash report whose salvaged tail is the victim's spooled tail.
        crash_path = crash_report_path(supervisor.result_path(row))
        if not crash_path.exists():
            print(f"FAIL: no crash report at {crash_path}")
            return 1
        header, salvaged = read_crash_report(crash_path)
        if header["reason"] != "worker_death":
            print(f"FAIL: crash reason {header['reason']!r}, "
                  "wanted 'worker_death'")
            return 1
        if header["job"].get("id") != job.id:
            print("FAIL: crash report names the wrong job")
            return 1
        spooled = read_pid_tail(
            supervisor.spool_dir(row), header["pid"],
            limit=supervisor.config.crash_events,
        )
        if not salvaged or [
            (e.pid, e.seq) for e in salvaged
        ] != [(e.pid, e.seq) for e in spooled]:
            print(
                f"FAIL: salvaged tail ({len(salvaged)} events) does not "
                f"match the victim's spooled shard ({len(spooled)} events)"
            )
            return 1
        if row.progress_done != row.progress_total or not row.progress_done:
            print(
                "FAIL: finished row progress is "
                f"{row.progress_done}/{row.progress_total}, wanted 100%"
            )
            return 1
        print(
            f"OK: flight recorder salvaged {len(salvaged)} events from "
            f"pid {header['pid']} ({crash_path.name}); "
            f"progress {row.progress_done}/{row.progress_total}"
        )

        # 3. orphan recovery: fake a RUNNING row owned by a dead pid.
        orphan = store.submit(
            {"figure": "fig11", "kwargs": {"epochs": 2}}, "orphan-key"
        ).job
        claimed = store.claim(owner_pid=2**22 + 12345)  # no such pid
        if claimed is None or claimed.id != orphan.id:
            print("FAIL: orphan setup did not claim the expected job")
            return 1
        store.close()
        store = JobStore(db_path)  # reopen triggers recovery
        row = store.job(orphan.id)
        if row.state != "QUEUED":
            print(f"FAIL: orphan not re-queued on reopen (state {row.state})")
            return 1
        if store.counters()["recovered"] != 1:
            print("FAIL: orphan recovery not counted")
            return 1
        cleanup = store.claim(owner_pid=os.getpid())
        store.mark_failed(cleanup.id, "smoke cleanup", "runtime")
        store.mark_dead(cleanup.id, "smoke cleanup", "runtime")
        print("OK: RUNNING job with dead owner re-queued on store open")

        # 4. dedup fan-out against the finished job.
        outcome = store.submit(spec, key)
        if not outcome.deduped or outcome.job.id != job.id:
            print("FAIL: identical resubmit did not join the existing job")
            return 1
        if outcome.job.result_digest != digest:
            print("FAIL: deduped submit does not share the result")
            return 1
        print(f"OK: resubmit joined job {job.id} "
              f"(submits={outcome.job.submits})")

        # 5. admission control at queue limit 0 sheds with a reason.
        store.queue_limit = 0
        try:
            store.submit({"figure": "fig11", "kwargs": {}}, "shed-key")
        except AdmissionError as exc:
            if store.counters()["shed"] != 1:
                print("FAIL: shed submit not counted")
                return 1
            print(f"OK: overload submit shed ({exc.reason})")
        else:
            print("FAIL: submit beyond queue limit was admitted")
            return 1
        store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
