#!/usr/bin/env python
"""Performance-regression harness.

Runs the micro/macro benchmarks under ``benchmarks/perf/``, writes a
``BENCH_<date>.json`` record at the repo root, and compares wall times
against the most recent previous record:

    python tools/bench.py                  # full run, compare, write record
    python tools/bench.py --quick          # small sizes (CI smoke)
    python tools/bench.py --no-compare     # skip the regression gate
    python tools/bench.py --only canonical multi_seed
    python tools/bench.py --out /tmp/b.json --baseline BENCH_2026-08-06.json
    python tools/bench.py --compare A.json B.json --fail-below 0.95

The regression gate fails (exit 1) when any shared benchmark got slower
than ``--threshold`` (default 0.85: >15%% slower than the previous record).
Records never overwrite each other: a same-day rerun writes
``BENCH_<date>.2.json`` and compares against the earlier file, so the
repo's ``BENCH_*`` files form the bench trajectory across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time
from datetime import date
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
for path in (str(ROOT / "src"), str(ROOT / "benchmarks")):
    if path not in sys.path:
        sys.path.insert(0, path)

# Benchmarks measure simulation, not cache replay: disable the run cache
# for this process and any pool workers it spawns.  The ``cached_figure``
# scenario re-enables it locally against a temp dir to measure the replay
# path itself.
os.environ["REPRO_CACHE_DISABLE"] = "1"

from perf import ALL_BENCHMARKS  # noqa: E402  (needs sys.path above)

BENCH_GLOB = "BENCH_*.json"
SCHEMA = 1
CALIBRATION_OPS = 200_000


def calibrate(repeats: int = 5) -> float:
    """Host-speed reference: ops/s of a fixed interpreter-bound loop.

    Stored in every record and used to *normalize* cross-record speedups:
    if the whole host is 20% slower (background load, a weaker CI
    runner), every benchmark wall inflates together with this loop, so
    dividing the two cancels machine speed and leaves only real code
    drift.  Best-of-``repeats`` like the micro benchmarks."""
    best = None
    for _ in range(repeats):
        d = {}
        s = 0
        started = time.perf_counter()
        for i in range(CALIBRATION_OPS):
            d[i & 255] = i
            s += d[i & 255] ^ (i >> 3)
        wall = time.perf_counter() - started
        if best is None or wall < best:
            best = wall
    return CALIBRATION_OPS / best if best else 0.0


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:
        return "unknown"


def default_out_path() -> Path:
    """``BENCH_<date>.json``, suffixed ``.N`` when earlier runs exist today."""
    stem = f"BENCH_{date.today().isoformat()}"
    candidate = ROOT / f"{stem}.json"
    counter = 2
    while candidate.exists():
        candidate = ROOT / f"{stem}.{counter}.json"
        counter += 1
    return candidate


def bench_records(exclude: Path) -> list[Path]:
    """Existing records, oldest first (date in the name, then suffix)."""

    def sort_key(path: Path):
        match = re.match(r"BENCH_(\d{4}-\d{2}-\d{2})(?:\.(\d+))?\.json$", path.name)
        if not match:
            return ("", 0, path.name)
        return (match.group(1), int(match.group(2) or 1), path.name)

    records = [
        p
        for p in ROOT.glob(BENCH_GLOB)
        if p.resolve() != exclude.resolve()
    ]
    return sorted(records, key=sort_key)


def run_benchmarks(names, quick: bool) -> dict:
    results = {}
    for name in names:
        fn = ALL_BENCHMARKS[name]
        print(f"  running {name} ...", end="", flush=True)
        started = time.perf_counter()
        results[name] = fn(quick)
        print(f" {results[name]['wall_s']:.3f}s wall")
        results[name]["harness_s"] = time.perf_counter() - started
    return results


def _calibration_scale(current: dict, previous: dict) -> float | None:
    """baseline/current host-speed ratio, or None when either record
    predates calibration.  Multiplying a raw wall-time speedup by this
    cancels uniform machine-speed differences (see :func:`calibrate`)."""
    base = previous.get("calibration_ops_per_s")
    cur = current.get("calibration_ops_per_s")
    if not base or not cur:
        return None
    return base / cur


def compare(
    current: dict, previous: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Render a comparison table; returns (lines, regressed names)."""
    scale = _calibration_scale(current, previous)
    norm_col = f" {'norm':>6}" if scale is not None else ""
    lines = [
        f"{'benchmark':<12} {'wall_s':>9} {'prev':>9} {'speedup':>8}"
        f"{norm_col}  {'events/s':>12}"
    ]
    if scale is not None:
        lines.insert(
            0,
            f"host speed vs baseline: {1 / scale:.2f}x "
            "(gate uses calibration-normalized speedups)",
        )
    regressed = []
    prev_results = previous.get("results", {})
    comparable = previous.get("quick", False) == current["quick"]
    for name, entry in current["results"].items():
        prev = prev_results.get(name)
        if prev and comparable and entry["wall_s"] > 0:
            speedup = prev["wall_s"] / entry["wall_s"]
            gated = speedup if scale is None else speedup * scale
            mark = ""
            if gated < threshold:
                regressed.append(name)
                mark = "  << REGRESSION"
            norm = f" {gated:>5.2f}x" if scale is not None else ""
            lines.append(
                f"{name:<12} {entry['wall_s']:>9.3f} {prev['wall_s']:>9.3f} "
                f"{speedup:>7.2f}x{norm}  {entry['events_per_s']:>12,.0f}{mark}"
            )
        else:
            note = "(no comparable baseline)" if not (prev and comparable) else ""
            lines.append(
                f"{name:<12} {entry['wall_s']:>9.3f} {'-':>9} {'-':>8}"
                f"{' ' * 7 if scale is not None else ''}  "
                f"{entry['events_per_s']:>12,.0f} {note}"
            )
    return lines, regressed


def compare_records(path_a: Path, path_b: Path, fail_below: float) -> int:
    """``--compare A B``: per-scenario drift table, no benchmarks run.

    B is judged against A (A is the baseline).  Returns exit status 1 when
    any shared scenario's speedup (A wall / B wall) falls below
    ``fail_below``, so a PR 5-style regression is flagged from two existing
    records without re-running anything.
    """
    with open(path_a) as handle:
        baseline = json.load(handle)
    with open(path_b) as handle:
        current = json.load(handle)
    if baseline.get("quick", False) != current.get("quick", False):
        print(
            "warning: comparing a quick record against a full record; "
            "wall times are not on the same scale"
        )
    base_results = baseline.get("results", {})
    cur_results = current.get("results", {})
    scale = _calibration_scale(current, baseline)
    print(
        f"baseline {path_a.name} (git {baseline.get('git', '?')})  vs  "
        f"{path_b.name} (git {current.get('git', '?')})"
    )
    if scale is not None:
        print(
            f"host speed vs baseline: {1 / scale:.2f}x "
            "(gate uses calibration-normalized speedups)"
        )
    norm_col = f" {'norm':>6}" if scale is not None else ""
    lines = [
        f"{'benchmark':<20} {'base_s':>9} {'cur_s':>9} {'speedup':>8}"
        f"{norm_col}  {'base ev/s':>12} {'cur ev/s':>12}"
    ]
    regressed = []
    for name, base in base_results.items():
        cur = cur_results.get(name)
        if cur is None:
            lines.append(f"{name:<20} {base['wall_s']:>9.3f} {'-':>9} "
                         f"{'-':>8}  (dropped)")
            continue
        speedup = base["wall_s"] / cur["wall_s"] if cur["wall_s"] else 0.0
        gated = speedup if scale is None else speedup * scale
        mark = ""
        if gated < fail_below:
            regressed.append(name)
            mark = "  << REGRESSION"
        norm = f" {gated:>5.2f}x" if scale is not None else ""
        lines.append(
            f"{name:<20} {base['wall_s']:>9.3f} {cur['wall_s']:>9.3f} "
            f"{speedup:>7.2f}x{norm}  {base['events_per_s']:>12,.0f} "
            f"{cur['events_per_s']:>12,.0f}{mark}"
        )
    for name, cur in cur_results.items():
        if name not in base_results:
            lines.append(
                f"{name:<20} {'-':>9} {cur['wall_s']:>9.3f} {'-':>8}  "
                f"{'(new)':>12} {cur['events_per_s']:>12,.0f}"
            )
    print("\n".join(lines))
    if regressed:
        print(
            f"FAIL: {', '.join(regressed)} below {fail_below:.2f}x of "
            f"{path_a.name}"
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench.py",
        description="Run the perf benchmarks and gate on regressions.",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        type=Path,
        metavar=("A.json", "B.json"),
        help="compare two existing records (A = baseline) and exit; "
        "no benchmarks are run",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=0.85,
        help="with --compare: minimum A-to-B speedup per scenario before "
        "exiting 1 (default 0.85)",
    )
    parser.add_argument("--quick", action="store_true", help="small sizes (smoke)")
    parser.add_argument(
        "--no-compare", action="store_true", help="skip the regression gate"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.85,
        help="minimum speedup vs previous record before failing (default 0.85)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run benchmarks that fail the gate up to N times, keeping "
        "the fastest wall; a regression must reproduce on every retry to "
        "fail the run (damps background-load bursts on shared hosts)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help=f"subset of benchmarks (have: {', '.join(ALL_BENCHMARKS)})",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="record path (default BENCH_<date>.json)"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="explicit record to compare against (default: latest BENCH_*.json)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run with the observability profiler attached and print the "
        "per-phase wall/cycle attribution after the benchmarks (measures "
        "tracing-on overhead; do not gate on these numbers)",
    )
    args = parser.parse_args(argv)

    if args.compare:
        path_a, path_b = args.compare
        for path in (path_a, path_b):
            if not path.exists() and not path.is_absolute():
                path = ROOT / path
            if not path.exists():
                parser.error(f"record {path} does not exist")
        path_a, path_b = (
            p if p.exists() else ROOT / p for p in (path_a, path_b)
        )
        return compare_records(path_a, path_b, args.fail_below)

    if args.profile:
        from repro import obsv

        obsv.enable()

    names = list(ALL_BENCHMARKS)
    if args.only:
        unknown = [n for n in args.only if n not in ALL_BENCHMARKS]
        if unknown:
            parser.error(f"unknown benchmarks: {unknown}; have {list(ALL_BENCHMARKS)}")
        names = list(args.only)

    out_path = args.out if args.out else default_out_path()
    mode = "quick" if args.quick else "full"
    print(f"bench: {mode} run of {len(names)} benchmarks -> {out_path.name}")
    record = {
        "schema": SCHEMA,
        "date": date.today().isoformat(),
        "timestamp": time.time(),
        "git": git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "quick": args.quick,
        "calibration_ops_per_s": calibrate(),
        "results": run_benchmarks(names, args.quick),
    }

    status = 0
    if not args.no_compare:
        if args.baseline is not None:
            baseline_path = args.baseline
            if not baseline_path.is_absolute():
                baseline_path = ROOT / baseline_path
            if not baseline_path.exists():
                parser.error(f"baseline {baseline_path} does not exist")
        else:
            previous = bench_records(exclude=out_path)
            baseline_path = previous[-1] if previous else None
        if baseline_path is None:
            print("no previous BENCH_*.json record; nothing to compare against")
        else:
            with open(baseline_path) as handle:
                baseline = json.load(handle)
            print(f"comparing against {Path(baseline_path).name} "
                  f"(git {baseline.get('git', '?')})")
            lines, regressed = compare(record, baseline, args.threshold)
            print("\n".join(lines))
            attempts = 0
            while regressed and attempts < args.retries:
                attempts += 1
                print(
                    f"retrying {', '.join(regressed)} "
                    f"(attempt {attempts}/{args.retries}): a real "
                    "regression reproduces, a load burst does not"
                )
                rerun = run_benchmarks(regressed, args.quick)
                for name, entry in rerun.items():
                    if entry["wall_s"] < record["results"][name]["wall_s"]:
                        record["results"][name] = entry
                # The host may have sped up since the first calibration
                # (the burst ended); re-measure so normalization tracks it.
                record["calibration_ops_per_s"] = max(
                    record["calibration_ops_per_s"], calibrate()
                )
                lines, regressed = compare(record, baseline, args.threshold)
                print("\n".join(lines))
            record["baseline"] = Path(baseline_path).name
            if regressed:
                print(
                    f"FAIL: at least one benchmark slower than "
                    f"{args.threshold:.2f}x of the previous record"
                )
                status = 1
    else:
        for name, entry in record["results"].items():
            print(
                f"{name:<12} {entry['wall_s']:>9.3f}s wall  "
                f"{entry['events_per_s']:>12,.0f} events/s"
            )

    if args.profile:
        from repro import obsv

        if obsv.PROFILER is not None and obsv.PROFILER.phases:
            print("\nengine attribution by controller phase:")
            print(obsv.PROFILER.table())
        record["profile"] = (
            obsv.PROFILER.snapshot() if obsv.PROFILER is not None else {}
        )
        if args.out is None:
            # A tracing-on record must not become a future run's baseline.
            print("(profile run: record not written; pass --out to keep it)")
            return status

    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
