#!/usr/bin/env python3
"""Datacenter co-location study (the paper's §7.2 scenario).

Runs the Table 2 real-world mix — Fastclick, FFSB-H/L, a Redis pair, and
six SPEC CPU2017 analogues — under Default, Isolate, and the staged A4
variants, and prints each workload's performance relative to Default.

Run:  python examples/datacenter_colocation.py
"""

from repro.experiments.figures.fig13 import performance_of
from repro.experiments.scenarios import build_server, hpw_heavy_workloads
from repro.telemetry.pcm import PRIORITY_HIGH

SCHEMES = ("default", "isolate", "a4-a", "a4-b", "a4-c", "a4-d")
EPOCHS = 22
WARMUP = 6


def main() -> None:
    baselines = {}
    rows = {}
    detected = {}
    for scheme in SCHEMES:
        workloads = hpw_heavy_workloads()
        server = build_server(workloads, scheme=scheme)
        result = server.run(epochs=EPOCHS, warmup=WARMUP)
        for workload in workloads:
            perf = performance_of(result, workload)
            if scheme == "default":
                baselines[workload.name] = perf or 1e-12
            rows.setdefault(workload.name, {})[scheme] = (
                perf / baselines[workload.name]
            )
        detected[scheme] = sorted(getattr(server.manager, "antagonists", {}))

    workloads = hpw_heavy_workloads()
    print(f"{'workload':<12} {'prio':<4} " + " ".join(f"{s:>8}" for s in SCHEMES))
    for workload in workloads:
        cells = " ".join(
            f"{rows[workload.name][scheme]:>8.2f}" for scheme in SCHEMES
        )
        print(f"{workload.name:<12} {workload.priority:<4} {cells}")

    hpw_names = [w.name for w in workloads if w.priority == PRIORITY_HIGH]
    print("\nHPW mean relative performance:")
    for scheme in SCHEMES:
        mean = sum(rows[name][scheme] for name in hpw_names) / len(hpw_names)
        extra = f"  (antagonists: {', '.join(detected[scheme])})" if detected[scheme] else ""
        print(f"  {scheme:>8}: {mean:5.2f}x{extra}")


if __name__ == "__main__":
    main()
