#!/usr/bin/env python3
"""The hidden knob, live: flip a single device's DCA off at runtime.

Phase 1 — DPDK-T and a 2 MB-block FIO share the LLC with DCA enabled for
both devices: storage blocks flood the DCA ways and network latency
suffers.  Phase 2 — we write the SSD port's ``perfctrlsts`` register
(NoSnoopOpWrEn := 1, Use_Allocating_Flow_Wr := 0), exactly what A4's F2
does, and watch network latency recover while storage throughput is
unchanged.

Run:  python examples/selective_ddio.py
"""

from repro.experiments.harness import Server
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload

MB = 1024 * 1024
PHASE_EPOCHS = 12
WARMUP = 4


def main() -> None:
    server = Server(cores=10)
    # Modest rings: even a fully backlogged Rx ring fits within the DCA
    # ways, so the network app can recover once the storage flood stops.
    # (With much larger rings a saturated backlog overflows the DCA ways
    # and keeps evicting itself — a metastable congestion state.)
    dpdk = DpdkWorkload(
        name="dpdk-t", touch=True, cores=4, packet_bytes=1514,
        ring_entries=5, priority="HPW",
    )
    fio = FioWorkload(
        name="fio", block_bytes=2 * MB, cores=4, io_depth=32, priority="LPW"
    )
    server.add_workload(dpdk)
    server.add_workload(fio)
    server.cat.set_mask(server.clos_of("dpdk-t"), range(4, 6))
    server.cat.set_mask(server.clos_of("fio"), range(2, 4))

    phase1 = server.run(epochs=PHASE_EPOCHS, warmup=WARMUP)
    d1, f1 = phase1.aggregate("dpdk-t"), phase1.aggregate("fio")

    ssd_port = server.pcie.port(fio.port_id)
    print("flipping perfctrlsts on the SSD port:",
          f"dca_enabled {ssd_port.dca_enabled} -> ", end="")
    ssd_port.disable_dca()
    print(ssd_port.dca_enabled)

    phase2 = server.run(epochs=PHASE_EPOCHS, warmup=WARMUP)
    d2, f2 = phase2.aggregate("dpdk-t"), phase2.aggregate("fio")

    print(f"\n{'':24} {'DCA both on':>14} {'SSD-DCA off':>14}")
    print(f"{'dpdk avg latency (cyc)':<24} {d1.avg_latency:>14.0f} {d2.avg_latency:>14.0f}")
    print(f"{'dpdk p99 latency (cyc)':<24} {d1.p99_latency:>14.0f} {d2.p99_latency:>14.0f}")
    print(f"{'dpdk throughput (l/c)':<24} {d1.throughput:>14.4f} {d2.throughput:>14.4f}")
    print(f"{'fio  throughput (l/c)':<24} {f1.throughput:>14.4f} {f2.throughput:>14.4f}")
    print(f"{'fio  DMA leaks':<24} {f1.dma_leaks:>14} {f2.dma_leaks:>14}")
    print(
        "\nSelective DCA disabling removes the storage-driven latency tax "
        "without costing the SSD anything (paper O4)."
    )


if __name__ == "__main__":
    main()
