#!/usr/bin/env python3
"""System daemons vs latency-critical services, with A4 adapting live.

KSM and zswap scan in bursts (phase in, phase out).  Watch A4 detect them
as non-I/O antagonists during a burst (pseudo LLC bypassing to the trash
way), then restore them when the burst ends — the §5.6 machinery — while
Fastclick and the cache-sensitive SPEC workloads keep their service levels.
Also exports the per-epoch CSV trace for plotting.

Run:  python examples/daemon_interference.py
"""

from repro.experiments.scenarios import build_server, daemon_interference_workloads
from repro.telemetry import trace

EPOCHS = 30


def main() -> None:
    for scheme in ("default", "a4"):
        server = build_server(daemon_interference_workloads(), scheme=scheme)
        result = server.run(epochs=EPOCHS, warmup=5)
        fc = result.aggregate("fastclick")
        parest = result.aggregate("parest")
        print(f"\n=== scheme: {scheme} ===")
        print(
            f"fastclick: avg latency {fc.avg_latency:.0f} cyc, "
            f"p99 {fc.p99_latency:.0f}, throughput {fc.throughput:.4f} l/c"
        )
        print(f"parest:    IPC {parest.ipc:.3f}, LLC hit {parest.llc_hit_rate:.2f}")
        for daemon in ("ksm", "zswap"):
            agg = result.aggregate(daemon)
            print(f"{daemon:9s} IPC {agg.ipc:.3f} (bursty LPW)")
        if scheme == "a4":
            print("\nA4 events (detection <-> restoration cycle):")
            for event in server.manager.events:
                if "ksm" in event or "zswap" in event:
                    print(f"  - {event}")
            csv_text = trace.to_csv(
                result.samples, metrics=("ipc", "llc_hit_rate", "mlc_miss_rate")
            )
            path = "/tmp/daemon_interference_trace.csv"
            with open(path, "w") as handle:
                handle.write(csv_text)
            print(f"\nper-epoch trace written to {path} "
                  f"({len(csv_text.splitlines()) - 1} rows)")


if __name__ == "__main__":
    main()
