#!/usr/bin/env python3
"""Quickstart: co-run a network HPW, a storage LPW, and cache-sensitive
CPU workloads, first under the hardware Default, then under A4.

Run:  python examples/quickstart.py
"""

from repro.experiments.harness import Server
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload
from repro.workloads.xmem import xmem
from repro.core.variants import make_manager

MB = 1024 * 1024


def build_server(scheme: str) -> Server:
    server = Server(cores=12)
    # A latency-critical kernel-bypass network app: high priority.
    server.add_workload(
        DpdkWorkload(name="dpdk-t", touch=True, cores=4, packet_bytes=1024,
                     priority="HPW")
    )
    # A throughput storage scanner with 2 MB blocks: low priority.
    server.add_workload(
        FioWorkload(name="fio", block_bytes=2 * MB, cores=4, io_depth=32,
                    priority="LPW")
    )
    # A cache-sensitive in-memory workload: high priority.
    server.add_workload(xmem("xmem-hp", 4.0, cores=2, priority="HPW"))
    server.set_manager(make_manager(scheme))
    return server


def main() -> None:
    for scheme in ("default", "a4"):
        server = build_server(scheme)
        result = server.run(epochs=24, warmup=6)
        print(f"\n=== scheme: {scheme} ===")
        print(result.summary())
        if scheme == "a4":
            print("\nA4 decision log:")
            for event in server.manager.events:
                print(f"  - {event}")
            print("\nfinal CAT masks:")
            for workload in server.workloads:
                ways = server.cat.mask(server.clos_of(workload.name))
                print(f"  {workload.name:8s} way[{ways[0]}:{ways[-1]}]")


if __name__ == "__main__":
    main()
