#!/usr/bin/env python3
"""Re-discover the paper's hidden LLC contentions interactively.

Sweeps a cache-sensitive X-Mem across all two-way LLC allocations while a
DPDK workload runs at way[5:6], once without touching packets (DPDK-NT) and
once touching them (DPDK-T).  The three contention groups of Fig. 3 —
latent (DCA ways), DMA bloat (shared ways), and the hidden directory
contention (inclusive ways) — show up as miss-rate spikes.

Run:  python examples/llc_contention_study.py
"""

from repro.experiments.figures import fig3, fig4


def bar(fraction: float, width: int = 40) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    for runner, label in (
        (fig3.run_fig3a, "DPDK-NT (packets not touched)"),
        (fig3.run_fig3b, "DPDK-T (packets touched)"),
    ):
        result = runner(epochs=6)
        print(f"\n=== {label}: X-Mem LLC miss rate per allocation ===")
        for row in result.rows:
            miss = row["xmem_llc_miss"]
            print(f"  {row['xmem_ways']:>10} {bar(miss)} {100 * miss:5.1f}%")
        for note in result.notes:
            print(f"  ({note})")

    print("\n=== validation: disable the NIC's DCA (Fig. 4) ===")
    result = fig4.run(epochs=6)
    print(result.render())
    print(
        "\nTakeaway: consumed DMA lines migrate into the inclusive ways "
        "(way[9:10]); the contention there follows the I/O consumption, "
        "not the CAT masks."
    )


if __name__ == "__main__":
    main()
