#!/usr/bin/env python3
"""Watch A4 carve up the LLC, way by way.

Runs the §7.1 microbenchmark mix under a chosen scheme and prints, each
epoch, an 11-column map of the LLC: which workload dominates each way, plus
A4's zone boundaries.  The DCA Zone (ways 0-1), the HP/LP split, and the
antagonists' trash way become visible as the controller converges.

Run:  python examples/llc_occupancy_map.py [default|isolate|a4]
"""

import sys

from repro.experiments.scenarios import build_server, microbenchmark_workloads

EPOCHS = 20
GLYPHS = "DNFX123456789"


def dominant_stream_per_way(server):
    """(stream, share) per way, by resident line counts."""
    per_way = {}
    for (stream, way), count in server.monitor.per_stream_and_way().items():
        bucket = per_way.setdefault(way, {})
        bucket[stream] = bucket.get(stream, 0) + count
    platform = server.platform
    result = {}
    for way in range(platform.llc_ways):
        bucket = per_way.get(way, {})
        if not bucket:
            result[way] = ("-", 0.0)
        else:
            stream = max(bucket, key=bucket.get)
            result[way] = (stream, bucket[stream] / platform.llc_way_lines)
    return result


def main() -> None:
    scheme = sys.argv[1] if len(sys.argv) > 1 else "a4"
    server = build_server(microbenchmark_workloads(), scheme=scheme)
    streams = [w.name for w in server.workloads]
    glyph = {name: GLYPHS[i] for i, name in enumerate(streams)}

    print(f"scheme: {scheme}")
    print("legend: " + "  ".join(f"{g}={n}" for n, g in glyph.items()))
    print("ways:   " + " ".join(f"{w:>3}" for w in range(server.platform.llc_ways)))
    for epoch in range(EPOCHS):
        server.sim.run_until(server.sim.now + server.epoch_cycles)
        sample = server.pcm.sample(server.sim.now)
        if server.manager is not None:
            server.manager.on_epoch(sample)
        owners = dominant_stream_per_way(server)
        cells = []
        for way in range(server.platform.llc_ways):
            stream, share = owners[way]
            mark = glyph.get(stream, "?") if share > 0.05 else "."
            cells.append(f"{mark}{int(share * 9)!s:>2}")
        note = ""
        if scheme.startswith("a4"):
            lp = server.manager.layout.lp_span()
            ants = ",".join(sorted(server.manager.antagonists)) or "-"
            note = f"  LPZ way[{lp[0]}:{lp[1]}] antagonists: {ants}"
        print(f"e{epoch:>3}:   " + " ".join(cells) + note)

    print("\n(each cell: dominant workload glyph + occupancy 0-9 tenths)")


if __name__ == "__main__":
    main()
