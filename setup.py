"""Setup shim.

The offline evaluation environment ships pip without the ``wheel`` package,
so PEP 660 editable installs (which build an editable wheel) fail.  Keeping a
classic ``setup.py`` alongside ``pyproject.toml`` lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path, which works offline.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
